/// \file unique_table.hpp
/// \brief Per-variable hash tables enforcing DD canonicity.
///
/// Shared nodes are what give decision diagrams their compactness (paper
/// Section II-B): before a new node becomes part of a DD it is looked up
/// here; if a structurally identical node already exists, the existing node
/// is reused and the candidate is recycled.
///
/// Concurrency: in concurrent mode (Package::setWorkers > 1) lookups are
/// serialized per *stripe* — a fixed pool of mutexes indexed by a hash of
/// (variable, bucket) — so threads canonicalizing unrelated nodes almost
/// never contend, while two threads racing to insert the *same* node are
/// forced through the same stripe and the loser finds the winner's node on
/// its re-walk under the lock. The lock covers the walk *and* the insert,
/// which is what preserves canonicity. Garbage collection and forEach stay
/// unlocked: the package only runs them at quiescent points (no parallel
/// operation in flight). Serial mode takes no locks at all.

#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <mutex>
#include <vector>

#include "dd/memory_manager.hpp"
#include "dd/node.hpp"

namespace ddsim::dd {

template <typename NodeT>
class UniqueTable {
 public:
  static constexpr std::size_t kBucketsPerVar = 1U << 15;
  static constexpr std::size_t kStripes = 64;

  explicit UniqueTable(MemoryManager<NodeT>& mm) : mm_(&mm) {}

  UniqueTable(const UniqueTable&) = delete;
  UniqueTable& operator=(const UniqueTable&) = delete;

  /// Toggle striped locking. Only flip at quiescent points.
  void setConcurrent(bool on) noexcept { concurrent_ = on; }

  /// Make room for variables 0..n-1.
  void resize(std::size_t numVars) {
    if (numVars > tables_.size()) {
      tables_.resize(numVars);
      for (auto& t : tables_) {
        if (t.empty()) {
          t.resize(kBucketsPerVar, nullptr);
        }
      }
    }
  }

  /// Canonicalize: return the unique node equal to *candidate. On a hit the
  /// candidate is recycled into the memory manager; on a miss it is inserted.
  NodeT* lookup(NodeT* candidate) {
    assert(candidate->v >= 0 &&
           static_cast<std::size_t>(candidate->v) < tables_.size());
    const auto var = static_cast<std::size_t>(candidate->v);
    auto& buckets = tables_[var];
    const std::size_t idx = hashNode(*candidate) & (kBucketsPerVar - 1);
    if (!concurrent_) {
      return lookupIn(buckets, idx, candidate);
    }
    auto& m = stripes_[stripeOf(var, idx)];
    if (!m.try_lock()) {
      lockWaits_.fetch_add(1, std::memory_order_relaxed);
      m.lock();
    }
    const std::lock_guard<std::mutex> lock(m, std::adopt_lock);
    // Lock order: stripe, then (inside MemoryManager::free on a hit or via
    // the caller's MemoryManager::get before entry) the allocator mutex.
    return lookupIn(buckets, idx, candidate);
  }

  /// Sweep: remove and recycle every node with a zero reference count.
  /// Returns the number of collected nodes. The caller must ensure that
  /// nothing outside ref-counted roots points at unreferenced nodes (i.e.
  /// compute tables are flushed right after) and that no concurrent lookups
  /// are in flight (quiescent point).
  std::size_t garbageCollect() {
    std::size_t collected = 0;
    for (auto& buckets : tables_) {
      for (auto& head : buckets) {
        NodeT** link = &head;
        while (*link != nullptr) {
          NodeT* n = *link;
          if (n->ref == 0) {
            *link = n->next;
            mm_->free(n);
            ++collected;
          } else {
            link = &n->next;
          }
        }
      }
    }
    liveCount_.fetch_sub(collected, std::memory_order_relaxed);
    return collected;
  }

  /// Nodes currently stored across all variables.
  [[nodiscard]] std::size_t liveCount() const noexcept {
    return liveCount_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Times a concurrent lookup found its stripe already held (contention
  /// signal surfaced through CacheStats).
  [[nodiscard]] std::size_t lockWaits() const noexcept {
    return lockWaits_.load(std::memory_order_relaxed);
  }
  /// Bytes held by the bucket arrays (fixed overhead counted against a
  /// byte budget alongside the node chunks).
  [[nodiscard]] std::size_t bucketBytes() const noexcept {
    return tables_.size() * kBucketsPerVar * sizeof(NodeT*);
  }

  /// Visit every stored node (used by tests and diagnostics). Quiescent
  /// points only.
  template <typename F>
  void forEach(F&& f) const {
    for (const auto& buckets : tables_) {
      for (NodeT* head : buckets) {
        for (NodeT* n = head; n != nullptr; n = n->next) {
          f(n);
        }
      }
    }
  }

 private:
  static std::size_t stripeOf(std::size_t var, std::size_t bucket) noexcept {
    // Spread adjacent buckets of the same variable over distinct stripes and
    // decorrelate variables from each other.
    return (bucket ^ (var * 0x9E3779B9U)) & (kStripes - 1);
  }

  NodeT* lookupIn(std::vector<NodeT*>& buckets, std::size_t idx,
                  NodeT* candidate) {
    for (NodeT* n = buckets[idx]; n != nullptr; n = n->next) {
      if (sameChildren(*n, *candidate)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        mm_->free(candidate);
        return n;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    candidate->next = buckets[idx];
    buckets[idx] = candidate;
    liveCount_.fetch_add(1, std::memory_order_relaxed);
    return candidate;
  }

  MemoryManager<NodeT>* mm_;
  std::vector<std::vector<NodeT*>> tables_;
  std::array<std::mutex, kStripes> stripes_;
  bool concurrent_ = false;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> liveCount_{0};
  std::atomic<std::size_t> lockWaits_{0};
};

}  // namespace ddsim::dd
