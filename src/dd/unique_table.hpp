/// \file unique_table.hpp
/// \brief Per-variable hash tables enforcing DD canonicity.
///
/// Shared nodes are what give decision diagrams their compactness (paper
/// Section II-B): before a new node becomes part of a DD it is looked up
/// here; if a structurally identical node already exists, the existing node
/// is reused and the candidate is recycled.

#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "dd/memory_manager.hpp"
#include "dd/node.hpp"

namespace ddsim::dd {

template <typename NodeT>
class UniqueTable {
 public:
  static constexpr std::size_t kBucketsPerVar = 1U << 15;

  explicit UniqueTable(MemoryManager<NodeT>& mm) : mm_(&mm) {}

  UniqueTable(const UniqueTable&) = delete;
  UniqueTable& operator=(const UniqueTable&) = delete;

  /// Make room for variables 0..n-1.
  void resize(std::size_t numVars) {
    if (numVars > tables_.size()) {
      tables_.resize(numVars);
      for (auto& t : tables_) {
        if (t.empty()) {
          t.resize(kBucketsPerVar, nullptr);
        }
      }
    }
  }

  /// Canonicalize: return the unique node equal to *candidate. On a hit the
  /// candidate is recycled into the memory manager; on a miss it is inserted.
  NodeT* lookup(NodeT* candidate) {
    assert(candidate->v >= 0 &&
           static_cast<std::size_t>(candidate->v) < tables_.size());
    auto& buckets = tables_[static_cast<std::size_t>(candidate->v)];
    const std::size_t idx = hashNode(*candidate) & (kBucketsPerVar - 1);
    for (NodeT* n = buckets[idx]; n != nullptr; n = n->next) {
      if (sameChildren(*n, *candidate)) {
        ++hits_;
        mm_->free(candidate);
        return n;
      }
    }
    ++misses_;
    candidate->next = buckets[idx];
    buckets[idx] = candidate;
    ++liveCount_;
    return candidate;
  }

  /// Sweep: remove and recycle every node with a zero reference count.
  /// Returns the number of collected nodes. The caller must ensure that
  /// nothing outside ref-counted roots points at unreferenced nodes (i.e.
  /// compute tables are flushed right after).
  std::size_t garbageCollect() {
    std::size_t collected = 0;
    for (auto& buckets : tables_) {
      for (auto& head : buckets) {
        NodeT** link = &head;
        while (*link != nullptr) {
          NodeT* n = *link;
          if (n->ref == 0) {
            *link = n->next;
            mm_->free(n);
            ++collected;
          } else {
            link = &n->next;
          }
        }
      }
    }
    liveCount_ -= collected;
    return collected;
  }

  /// Nodes currently stored across all variables.
  [[nodiscard]] std::size_t liveCount() const noexcept { return liveCount_; }
  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }
  /// Bytes held by the bucket arrays (fixed overhead counted against a
  /// byte budget alongside the node chunks).
  [[nodiscard]] std::size_t bucketBytes() const noexcept {
    return tables_.size() * kBucketsPerVar * sizeof(NodeT*);
  }

  /// Visit every stored node (used by tests and diagnostics).
  template <typename F>
  void forEach(F&& f) const {
    for (const auto& buckets : tables_) {
      for (NodeT* head : buckets) {
        for (NodeT* n = head; n != nullptr; n = n->next) {
          f(n);
        }
      }
    }
  }

 private:
  MemoryManager<NodeT>* mm_;
  std::vector<std::vector<NodeT*>> tables_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t liveCount_ = 0;
};

}  // namespace ddsim::dd
