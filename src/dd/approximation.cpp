#include "dd/approximation.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace ddsim::dd {

namespace {

using EdgeRef = std::pair<const VNode*, std::size_t>;

/// Probability mass flowing through every edge of the DD (the state is
/// assumed normalized). Nodes are processed top-down in level order; the
/// mass of a shared node is the sum over all paths reaching it.
std::map<EdgeRef, double> edgeMasses(Package& pkg, const VEdge& root) {
  std::unordered_map<const VNode*, double> nodeMass;
  nodeMass[root.p] = 1.0;

  // Collect reachable nodes grouped by variable (descending = top-down).
  std::vector<const VNode*> order;
  {
    std::vector<const VNode*> stack{root.p};
    std::unordered_map<const VNode*, bool> seen;
    while (!stack.empty()) {
      const VNode* n = stack.back();
      stack.pop_back();
      if (n->isTerminal() || seen[n]) {
        continue;
      }
      seen[n] = true;
      order.push_back(n);
      for (const auto& e : n->e) {
        stack.push_back(e.p);
      }
    }
    std::sort(order.begin(), order.end(),
              [](const VNode* a, const VNode* b) { return a->v > b->v; });
  }

  std::map<EdgeRef, double> masses;
  for (const VNode* n : order) {
    const double mass = nodeMass[n];
    const double nodeNorm = pkg.norm2(VEdge{const_cast<VNode*>(n), pkg.cone()});
    if (nodeNorm <= 0.0) {
      continue;
    }
    for (std::size_t i = 0; i < 2; ++i) {
      const VEdge& e = n->e[i];
      if (e.w->exactlyZero()) {
        continue;
      }
      const double childNorm = pkg.norm2(VEdge{e.p, pkg.cone()});
      const double edgeMass = mass * e.w->mag2() * childNorm / nodeNorm;
      masses[{n, i}] += edgeMass;
      nodeMass[e.p] += edgeMass;
    }
  }
  return masses;
}

VEdge rebuildWithoutEdges(Package& pkg, const VNode* node,
                          const std::map<EdgeRef, double>& cuts,
                          std::unordered_map<const VNode*, VEdge>& memo) {
  if (node->isTerminal()) {
    return pkg.vOneTerminal();
  }
  if (const auto it = memo.find(node); it != memo.end()) {
    return it->second;
  }
  std::array<VEdge, 2> children;
  for (std::size_t i = 0; i < 2; ++i) {
    const VEdge& e = node->e[i];
    if (e.w->exactlyZero() || cuts.count({node, i}) != 0) {
      children[i] = pkg.vZero();
      continue;
    }
    const VEdge sub = rebuildWithoutEdges(pkg, e.p, cuts, memo);
    children[i] =
        sub.w->exactlyZero()
            ? pkg.vZero()
            : VEdge{sub.p, pkg.clookup(*e.w * *sub.w)};
  }
  const VEdge rebuilt = pkg.makeVNode(node->v, children);
  memo.emplace(node, rebuilt);
  return rebuilt;
}

}  // namespace

ApproximationResult approximate(Package& pkg, const VEdge& root,
                                double targetFidelity) {
  if (targetFidelity <= 0.0 || targetFidelity > 1.0) {
    throw std::invalid_argument("approximate: target fidelity must be in (0, 1]");
  }
  ApproximationResult result;
  result.state = root;
  result.nodesBefore = pkg.size(root);
  result.nodesAfter = result.nodesBefore;
  if (targetFidelity >= 1.0 || root.w->exactlyZero() || root.p->isTerminal()) {
    return result;
  }

  const auto masses = edgeMasses(pkg, root);

  // Cheapest-first greedy selection within the probability budget. Removing
  // overlapping edges (an edge below an already-cut one) only makes the cut
  // cheaper than accounted, so the fidelity bound remains conservative.
  std::vector<std::pair<double, EdgeRef>> candidates;
  candidates.reserve(masses.size());
  for (const auto& [ref, mass] : masses) {
    candidates.emplace_back(mass, ref);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  const double budget = 1.0 - targetFidelity;
  double spent = 0.0;
  std::map<EdgeRef, double> cuts;
  for (const auto& [mass, ref] : candidates) {
    if (spent + mass > budget || spent + mass >= 1.0) {
      break;
    }
    spent += mass;
    cuts.emplace(ref, mass);
  }
  if (cuts.empty()) {
    return result;
  }

  std::unordered_map<const VNode*, VEdge> memo;
  VEdge rebuilt = rebuildWithoutEdges(pkg, root.p, cuts, memo);
  if (rebuilt.w->exactlyZero()) {
    return result;  // refused: would annihilate the state
  }
  rebuilt = {rebuilt.p, pkg.clookup(*root.w * *rebuilt.w)};
  const double norm = pkg.norm2(rebuilt);
  rebuilt.w = pkg.clookup(*rebuilt.w * (1.0 / std::sqrt(norm)));

  result.fidelity = pkg.fidelity(root, rebuilt);
  result.removedEdges = cuts.size();
  result.nodesAfter = pkg.size(rebuilt);
  result.state = rebuilt;
  return result;
}

}  // namespace ddsim::dd
