#include "dd/package.hpp"

#include "obs/trace.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace ddsim::dd {

namespace {
constexpr std::uint32_t kRefSaturated = std::numeric_limits<std::uint32_t>::max();

bool isPowerOfTwo(std::uint64_t x) noexcept { return x != 0 && (x & (x - 1)) == 0; }

std::uint32_t log2OfPow2(std::uint64_t x) noexcept {
  std::uint32_t l = 0;
  while ((x >>= 1U) != 0) {
    ++l;
  }
  return l;
}
}  // namespace

Package::Package(std::size_t numQubits, double tolerance)
    : numQubits_(numQubits),
      ctab_(tolerance),
      vUnique_(vMem_),
      mUnique_(mMem_) {
  if (numQubits == 0 || numQubits > 62) {
    throw std::invalid_argument("Package: qubit count must be in [1, 62]");
  }
  vUnique_.resize(numQubits);
  mUnique_.resize(numQubits);
  vTerminal_.v = kTerminalVar;
  vTerminal_.ref = kRefSaturated;
  mTerminal_.v = kTerminalVar;
  mTerminal_.ref = kRefSaturated;
  // The 1x1 matrix terminal is the identity (and trivially diagonal); the
  // structure flags of every matrix node derive from this base case.
  mTerminal_.flags = kNodeIsDiagonal | kNodeIsIdentity;
  identities_.reserve(numQubits);
}

CacheStats Package::cacheStats() const noexcept {
  CacheStats cs;
  cs.mulMVHits = mulMVTable_.hits();
  cs.mulMVMisses = mulMVTable_.misses();
  cs.mulMMHits = mulMMTable_.hits();
  cs.mulMMMisses = mulMMTable_.misses();
  cs.addHits = addVTable_.hits() + addMTable_.hits();
  cs.addMisses = addVTable_.misses() + addMTable_.misses();
  cs.uniqueTableHits = vUnique_.hits() + mUnique_.hits();
  cs.uniqueTableMisses = vUnique_.misses() + mUnique_.misses();
  cs.complexTableHits = ctab_.hits();
  cs.complexTableMisses = ctab_.misses();
  cs.mulMVRetained = mulMVTable_.counters().retained;
  cs.mulMMRetained = mulMMTable_.counters().retained;
  cs.addRetained = addVTable_.counters().retained + addMTable_.counters().retained;
  cs.uniqueTableLockWaits = vUnique_.lockWaits() + mUnique_.lockWaits();
  cs.complexTableLockWaits = ctab_.lockWaits();
  const auto accumulate = [&cs](const ComputeTableCounters& c) {
    cs.cacheRetained += c.retained;
    cs.cacheStaleDropped += c.staleDropped;
    cs.computeTableLockWaits += c.lockWaits;
  };
  accumulate(addVTable_.counters());
  accumulate(addMTable_.counters());
  accumulate(mulMVTable_.counters());
  accumulate(mulMMTable_.counters());
  accumulate(kronMTable_.counters());
  accumulate(kronVTable_.counters());
  accumulate(transposeTable_.counters());
  accumulate(innerTable_.counters());
  accumulate(normTable_.counters());
  accumulate(traceTable_.counters());
  return cs;
}

// ------------------------------------------------- intra-package workers

void Package::setWorkers(std::size_t n) {
  const std::size_t target = n == 0 ? 1 : n;
  if (target == workers()) {
    return;
  }
  pool_.reset();
  const bool concurrent = target > 1;
  if (concurrent) {
    pool_ = std::make_unique<TaskPool>(target - 1);
  }
  ctab_.setConcurrent(concurrent);
  vMem_.setConcurrent(concurrent);
  mMem_.setConcurrent(concurrent);
  vUnique_.setConcurrent(concurrent);
  mUnique_.setConcurrent(concurrent);
  addVTable_.setConcurrent(concurrent);
  addMTable_.setConcurrent(concurrent);
  mulMVTable_.setConcurrent(concurrent);
  mulMMTable_.setConcurrent(concurrent);
  kronMTable_.setConcurrent(concurrent);
  kronVTable_.setConcurrent(concurrent);
  transposeTable_.setConcurrent(concurrent);
  innerTable_.setConcurrent(concurrent);
  normTable_.setConcurrent(concurrent);
  traceTable_.setConcurrent(concurrent);
}

std::size_t Package::spawnBudget(Qubit top) const noexcept {
  // Small sub-DDs stay serial: below ~6 levels a subproblem is cheaper than
  // the enqueue/steal round-trip it would pay for.
  constexpr Qubit kMinParallelVar = 6;
  if (pool_ == nullptr || top < kMinParallelVar) {
    return 0;
  }
  // ceil(log2(workers)) + 1 levels of 2/4-way forks keeps every worker fed
  // without flooding the queues with tiny tasks.
  const std::size_t w = workers();
  std::size_t depth = 1;
  while ((std::size_t{1} << depth) < w) {
    ++depth;
  }
  return depth + 1;
}

// --------------------------------------------------------------- ref counts

template <std::size_t Arity>
void Package::incRefNode(Node<Arity>* n) noexcept {
  if (n == nullptr || n->isTerminal() || n->ref == kRefSaturated) {
    return;
  }
  ++n->ref;
  if (n->ref == 1U) {
    for (const auto& edge : n->e) {
      incRefNode(edge.p);
    }
  }
}

template <std::size_t Arity>
void Package::decRefNode(Node<Arity>* n) noexcept {
  if (n == nullptr || n->isTerminal() || n->ref == kRefSaturated) {
    return;
  }
  assert(n->ref > 0 && "decRef on unreferenced node");
  --n->ref;
  if (n->ref == 0U) {
    for (const auto& edge : n->e) {
      decRefNode(edge.p);
    }
  }
}

template void Package::incRefNode<2>(Node<2>*) noexcept;
template void Package::incRefNode<4>(Node<4>*) noexcept;
template void Package::decRefNode<2>(Node<2>*) noexcept;
template void Package::decRefNode<4>(Node<4>*) noexcept;

std::size_t Package::garbageCollect() {
  const obs::ScopedSpan span("dd.gc", obs::cat::kDd);
  const std::size_t collected =
      vUnique_.garbageCollect() + mUnique_.garbageCollect();
  // Sweep the complex table: weights referenced by the surviving nodes (or
  // pinned as root weights / constants) stay, everything else is recycled.
  std::unordered_set<CWeight> liveWeights;
  liveWeights.reserve((vUnique_.liveCount() + mUnique_.liveCount()) * 2);
  vUnique_.forEach([&liveWeights](const VNode* n) {
    for (const auto& e : n->e) {
      liveWeights.insert(e.w);
    }
  });
  mUnique_.forEach([&liveWeights](const MNode* n) {
    for (const auto& e : n->e) {
      liveWeights.insert(e.w);
    }
  });
  ctab_.garbageCollect(liveWeights);
  // O(1) logical invalidation of every compute table: entries become stale
  // and are either revalidated (operands + result survived, checked via the
  // incarnation stamps) or dropped on their next lookup, instead of being
  // eagerly wiped here.
  addVTable_.newGeneration();
  addMTable_.newGeneration();
  mulMVTable_.newGeneration();
  mulMMTable_.newGeneration();
  kronMTable_.newGeneration();
  kronVTable_.newGeneration();
  transposeTable_.newGeneration();
  innerTable_.newGeneration();
  normTable_.newGeneration();
  traceTable_.newGeneration();
  ++stats_.garbageCollections;
  stats_.nodesCollected += collected;
  return collected;
}

bool Package::maybeGarbageCollect() {
  if (injector_ != nullptr && injector_->onGcPoll()) {
    garbageCollect();
    return true;
  }
  const std::size_t live = liveNodes();
  if (governor_.active()) {
    const auto level = governor_.classify(live, bytesAllocated());
    governor_.observe(level, live);
    // Soft (or worse) pressure at a quiescent point: emergency-collect,
    // including chunk release — but only if the live count has grown since
    // the last emergency collection, so a mostly-live working set does not
    // trigger a futile full sweep on every step.
    if (level != ResourcePressure::None && live >= emergencyRearmLive_) {
      emergencyCollect();
      return true;
    }
  }
  if (live < gcThreshold_) {
    return false;
  }
  garbageCollect();
  const std::size_t remaining = liveNodes();
  if (remaining > gcThreshold_ / 2) {
    gcThreshold_ *= 2;  // mostly-live table: back off to amortize sweeps
  }
  return true;
}

std::size_t Package::emergencyCollect() {
  const obs::ScopedSpan span("dd.emergency-collect", obs::cat::kDd);
  garbageCollect();
  // Chunk release invalidates raw pointers held by stale compute-table
  // entries (their nodes sit on the free list inside the released chunks),
  // so the tables are hard-cleared — no revalidation possible — before any
  // memory is returned to the OS.
  addVTable_.clear();
  addMTable_.clear();
  mulMVTable_.clear();
  mulMMTable_.clear();
  kronMTable_.clear();
  kronVTable_.clear();
  transposeTable_.clear();
  innerTable_.clear();
  normTable_.clear();
  traceTable_.clear();
  const std::size_t released =
      vMem_.releaseFreeChunks() + mMem_.releaseFreeChunks();
  ++stats_.emergencyCollections;
  stats_.bytesReleased += released;
  const std::size_t live = liveNodes();
  emergencyRearmLive_ = live + std::max<std::size_t>(live / 8, 1024);
  return released;
}

// --------------------------------------------------------- node construction

VEdge Package::makeVNode(Qubit v, std::array<VEdge, 2> children) {
  assert(v >= 0 && static_cast<std::size_t>(v) < numQubits_);
  checkResources();
  for (auto& c : children) {
    if (c.w->exactlyZero()) {
      c = vZero();  // canonical zero stub
    }
    assert(c.isTerminal() ? c.w->exactlyZero() || v == 0 : c.p->v == v - 1);
  }
  if (children[0].w->exactlyZero() && children[1].w->exactlyZero()) {
    return vZero();
  }

  // Normalize: divide by the maximum-magnitude weight. Ties — including
  // *near*-ties within the canonicalization tolerance — resolve to the
  // lowest index. The tolerance matters: magnitudes that are equal up to
  // floating-point drift must pick the same index on every construction
  // path, or structurally identical subtrees stop being shared and the DD
  // degenerates (cf. the accuracy discussion in [21]).
  std::size_t maxIdx = 0;
  double maxMag = children[0].w->mag2();
  if (children[1].w->mag2() > maxMag + ctab_.tolerance()) {
    maxIdx = 1;
    maxMag = children[1].w->mag2();
  }
  const CWeight top = children[maxIdx].w;
  for (std::size_t i = 0; i < 2; ++i) {
    if (i == maxIdx) {
      children[i].w = cone();
    } else if (!children[i].w->exactlyZero()) {
      children[i].w = clookup(*children[i].w / *top);
    }
  }

  VNode* candidate = vMem_.get();
  candidate->v = v;
  candidate->e = children;
  VNode* node = vUnique_.lookup(candidate);
  stats_.peakLiveNodes.maxWith(vUnique_.liveCount() + mUnique_.liveCount());
  return {node, top};
}

MEdge Package::makeMNode(Qubit v, std::array<MEdge, 4> children) {
  assert(v >= 0 && static_cast<std::size_t>(v) < numQubits_);
  checkResources();
  bool allZero = true;
  for (auto& c : children) {
    if (c.w->exactlyZero()) {
      c = mZero();
    } else {
      allZero = false;
    }
    assert(c.isTerminal() ? c.w->exactlyZero() || v == 0 : c.p->v == v - 1);
  }
  if (allZero) {
    return mZero();
  }

  // Near-tie tolerant maximum selection; see the vector-node comment.
  std::size_t maxIdx = 0;
  double maxMag = -1.0;
  for (std::size_t i = 0; i < 4; ++i) {
    const double m = children[i].w->mag2();
    if (m > maxMag + ctab_.tolerance()) {
      maxMag = m;
      maxIdx = i;
    }
  }
  const CWeight top = children[maxIdx].w;
  for (std::size_t i = 0; i < 4; ++i) {
    if (i == maxIdx) {
      children[i].w = cone();
    } else if (!children[i].w->exactlyZero()) {
      children[i].w = clookup(*children[i].w / *top);
    }
  }

  MNode* candidate = mMem_.get();
  candidate->v = v;
  candidate->e = children;
  // Structure classification, O(1) per node given the children's flags
  // (children are canonical, so theirs are already computed). The flags are
  // a pure function of the successor edges, so on a unique-table hit the
  // existing node necessarily carries the same flags.
  if (children[1].w->exactlyZero() && children[2].w->exactlyZero()) {
    const auto diagonalQuadrant = [](const MEdge& c) {
      return c.w->exactlyZero() || c.p->isDiagonal();
    };
    if (diagonalQuadrant(children[0]) && diagonalQuadrant(children[3])) {
      candidate->flags |= kNodeIsDiagonal;
      if (children[0].p == children[3].p && children[0].w == children[3].w &&
          children[0].w == cone() && children[0].p->isIdentity()) {
        candidate->flags |= kNodeIsIdentity;
      }
    }
  }
  MNode* node = mUnique_.lookup(candidate);
  stats_.peakLiveNodes.maxWith(vUnique_.liveCount() + mUnique_.liveCount());
  return {node, top};
}

// -------------------------------------------------------- state construction

VEdge Package::makeZeroState() { return makeBasisState(0); }

VEdge Package::makeBasisState(std::uint64_t bits) {
  if (numQubits_ < 64 && (bits >> numQubits_) != 0) {
    throw std::invalid_argument("makeBasisState: bits exceed qubit count");
  }
  VEdge e = vOneTerminal();
  for (std::size_t q = 0; q < numQubits_; ++q) {
    const bool one = ((bits >> q) & 1U) != 0;
    e = makeVNode(static_cast<Qubit>(q),
                  one ? std::array{vZero(), e} : std::array{e, vZero()});
  }
  return e;
}

VEdge Package::buildDenseVector(Qubit level, std::span<const ComplexValue> amps,
                                std::uint64_t off, std::uint64_t dim) {
  pollAbort();
  if (level < 0) {
    return {&vTerminal_, clookup(amps[off])};
  }
  const std::uint64_t half = dim / 2;
  return makeVNode(level, {buildDenseVector(level - 1, amps, off, half),
                           buildDenseVector(level - 1, amps, off + half, half)});
}

VEdge Package::makeStateFromVector(std::span<const ComplexValue> amplitudes) {
  if (amplitudes.size() != (1ULL << numQubits_)) {
    throw std::invalid_argument("makeStateFromVector: size must be 2^n");
  }
  return buildDenseVector(static_cast<Qubit>(numQubits_) - 1, amplitudes, 0,
                          amplitudes.size());
}

VEdge Package::makeSmallStateFromVector(std::span<const ComplexValue> amplitudes) {
  if (!isPowerOfTwo(amplitudes.size()) ||
      amplitudes.size() > (1ULL << numQubits_)) {
    throw std::invalid_argument(
        "makeSmallStateFromVector: size must be a power of two within range");
  }
  const auto top = static_cast<Qubit>(log2OfPow2(amplitudes.size())) - 1;
  return buildDenseVector(top, amplitudes, 0, amplitudes.size());
}

// ------------------------------------------------------- matrix construction

MEdge Package::makeIdent() {
  return makeIdent(static_cast<Qubit>(numQubits_) - 1);
}

MEdge Package::makeIdent(Qubit topVar) {
  if (topVar < 0) {
    return mOneTerminal();
  }
  assert(static_cast<std::size_t>(topVar) < numQubits_);
  while (identities_.size() <= static_cast<std::size_t>(topVar)) {
    const auto q = static_cast<Qubit>(identities_.size());
    MEdge below = identities_.empty() ? mOneTerminal() : identities_.back();
    MEdge id = makeMNode(q, {below, mZero(), mZero(), below});
    incRef(id);  // pin against garbage collection
    identities_.push_back(id);
  }
  return identities_[static_cast<std::size_t>(topVar)];
}

MEdge Package::extendToFullWidth(MEdge e, const Controls& controls) {
  Controls sorted = controls;
  std::sort(sorted.begin(), sorted.end());
  const Qubit base = e.isTerminal() ? -1 : e.p->v;
  auto ctrl = sorted.begin();
  for (Qubit q = base + 1; q < static_cast<Qubit>(numQubits_); ++q) {
    while (ctrl != sorted.end() && ctrl->qubit < q) {
      ++ctrl;
    }
    if (ctrl != sorted.end() && ctrl->qubit == q) {
      MEdge id = makeIdent(q - 1);
      e = ctrl->positive ? makeMNode(q, {id, mZero(), mZero(), e})
                         : makeMNode(q, {e, mZero(), mZero(), id});
    } else {
      e = makeMNode(q, {e, mZero(), mZero(), e});
    }
  }
  return e;
}

MEdge Package::makeGateDD(const GateMatrix& u, Qubit target,
                          const Controls& controls) {
  const OpGuard guard(*this, "makeGateDD");
  if (target < 0 || static_cast<std::size_t>(target) >= numQubits_) {
    throw std::invalid_argument("makeGateDD: target out of range");
  }
  Controls sorted = controls;
  std::sort(sorted.begin(), sorted.end());
  for (const auto& c : sorted) {
    if (c.qubit == target) {
      throw std::invalid_argument("makeGateDD: control equals target");
    }
    if (c.qubit < 0 || static_cast<std::size_t>(c.qubit) >= numQubits_) {
      throw std::invalid_argument("makeGateDD: control out of range");
    }
  }

  std::array<MEdge, 4> em;
  for (std::size_t i = 0; i < 4; ++i) {
    em[i] = u[i].approximatelyZero() ? mZero()
                                     : MEdge{&mTerminal_, clookup(u[i])};
  }

  auto ctrl = sorted.begin();
  // Levels below the target: tensor with identity, or embed the control
  // test (on the unsatisfied branch, diagonal entries contribute identity,
  // off-diagonal entries contribute zero).
  for (Qubit q = 0; q < target; ++q) {
    while (ctrl != sorted.end() && ctrl->qubit < q) {
      ++ctrl;
    }
    const bool isControl = ctrl != sorted.end() && ctrl->qubit == q;
    for (std::size_t i = 0; i < 4; ++i) {
      if (!isControl) {
        em[i] = makeMNode(q, {em[i], mZero(), mZero(), em[i]});
      } else if (i == 0 || i == 3) {
        MEdge id = makeIdent(q - 1);
        em[i] = ctrl->positive
                    ? makeMNode(q, {id, mZero(), mZero(), em[i]})
                    : makeMNode(q, {em[i], mZero(), mZero(), id});
      } else {
        em[i] = ctrl->positive
                    ? makeMNode(q, {mZero(), mZero(), mZero(), em[i]})
                    : makeMNode(q, {em[i], mZero(), mZero(), mZero()});
      }
    }
  }

  MEdge e = makeMNode(target, em);

  // Levels above the target.
  Controls above;
  for (const auto& c : sorted) {
    if (c.qubit > target) {
      above.push_back(c);
    }
  }
  return extendToFullWidth(e, above);
}

MEdge Package::buildPermutation(
    Qubit level, std::vector<std::pair<std::uint64_t, std::uint64_t>>& entries) {
  pollAbort();
  if (entries.empty()) {
    return mZero();
  }
  if (level < 0) {
    assert(entries.size() == 1);
    return mOneTerminal();
  }
  const std::uint64_t mask = 1ULL << level;
  std::array<std::vector<std::pair<std::uint64_t, std::uint64_t>>, 4> groups;
  for (const auto& [col, row] : entries) {
    const std::size_t i =
        ((row & mask) != 0 ? 2U : 0U) + ((col & mask) != 0 ? 1U : 0U);
    groups[i].emplace_back(col & ~mask, row & ~mask);
  }
  std::array<MEdge, 4> children;
  for (std::size_t i = 0; i < 4; ++i) {
    children[i] = buildPermutation(level - 1, groups[i]);
  }
  return makeMNode(level, children);
}

MEdge Package::makePermutationDD(const std::vector<std::uint64_t>& perm,
                                 const Controls& controls) {
  const OpGuard guard(*this, "makePermutationDD");
  if (!isPowerOfTwo(perm.size())) {
    throw std::invalid_argument("makePermutationDD: size must be a power of two");
  }
  const auto t = static_cast<Qubit>(log2OfPow2(perm.size()));
  if (static_cast<std::size_t>(t) > numQubits_) {
    throw std::invalid_argument("makePermutationDD: too many target qubits");
  }
  {
    std::vector<bool> seen(perm.size(), false);
    for (const auto y : perm) {
      if (y >= perm.size() || seen[y]) {
        throw std::invalid_argument("makePermutationDD: perm is not a bijection");
      }
      seen[y] = true;
    }
  }
  for (const auto& c : controls) {
    if (c.qubit < t || static_cast<std::size_t>(c.qubit) >= numQubits_) {
      throw std::invalid_argument(
          "makePermutationDD: controls must lie above the permuted qubits");
    }
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
  entries.reserve(perm.size());
  for (std::uint64_t col = 0; col < perm.size(); ++col) {
    entries.emplace_back(col, perm[col]);
  }
  MEdge e = buildPermutation(t - 1, entries);
  return extendToFullWidth(e, controls);
}

MEdge Package::buildDense(Qubit level, std::span<const ComplexValue> rowMajor,
                          std::uint64_t rowOff, std::uint64_t colOff,
                          std::uint64_t dim) {
  pollAbort();
  if (level < 0) {
    const std::uint64_t fullDim = static_cast<std::uint64_t>(
        std::llround(std::sqrt(static_cast<double>(rowMajor.size()))));
    return {&mTerminal_, clookup(rowMajor[rowOff * fullDim + colOff])};
  }
  const std::uint64_t half = dim / 2;
  std::array<MEdge, 4> children;
  for (std::size_t i = 0; i < 4; ++i) {
    const std::uint64_t r = rowOff + ((i & 2U) != 0 ? half : 0);
    const std::uint64_t c = colOff + ((i & 1U) != 0 ? half : 0);
    children[i] = buildDense(level - 1, rowMajor, r, c, half);
  }
  return makeMNode(level, children);
}

MEdge Package::makeMatrixFromDense(std::span<const ComplexValue> rowMajor,
                                   const Controls& controls) {
  std::uint64_t dim = 1;
  while (dim * dim < rowMajor.size()) {
    dim *= 2;
  }
  if (dim * dim != rowMajor.size() || !isPowerOfTwo(dim)) {
    throw std::invalid_argument("makeMatrixFromDense: size must be 4^k");
  }
  const auto t = static_cast<Qubit>(log2OfPow2(dim));
  if (static_cast<std::size_t>(t) > numQubits_) {
    throw std::invalid_argument("makeMatrixFromDense: too many qubits");
  }
  MEdge e = buildDense(t - 1, rowMajor, 0, 0, dim);
  return extendToFullWidth(e, controls);
}

MEdge Package::makeSmallMatrixFromDense(std::span<const ComplexValue> rowMajor) {
  std::uint64_t dim = 1;
  while (dim * dim < rowMajor.size()) {
    dim *= 2;
  }
  if (dim * dim != rowMajor.size()) {
    throw std::invalid_argument("makeSmallMatrixFromDense: size must be 4^k");
  }
  const auto t = static_cast<Qubit>(log2OfPow2(dim));
  if (static_cast<std::size_t>(t) > numQubits_) {
    throw std::invalid_argument("makeSmallMatrixFromDense: too many qubits");
  }
  return buildDense(t - 1, rowMajor, 0, 0, dim);
}

// ---------------------------------------------------------------- addition

VEdge Package::add(const VEdge& a, const VEdge& b) {
  const OpGuard guard(*this, "add(vector)");
  const obs::ScopedSpan span("dd.add.v", obs::cat::kDd);
  const Qubit top = a.p->isTerminal() ? Qubit{0} : a.p->v;
  return addRec(a, b, spawnBudget(top));
}
MEdge Package::add(const MEdge& a, const MEdge& b) {
  const OpGuard guard(*this, "add(matrix)");
  const obs::ScopedSpan span("dd.add.m", obs::cat::kDd);
  const Qubit top = a.p->isTerminal() ? Qubit{0} : a.p->v;
  return addRec(a, b, spawnBudget(top));
}

VEdge Package::addRec(const VEdge& a, const VEdge& b, std::size_t spawn) {
  ++stats_.recursiveAddCalls;
  pollAbort();
  if (a.w->exactlyZero()) {
    return b;
  }
  if (b.w->exactlyZero()) {
    return a;
  }
  if (a.p == b.p) {
    const CWeight w = clookup(*a.w + *b.w);
    return w->exactlyZero() ? vZero() : VEdge{a.p, w};
  }

  // Addition commutes: order operands to double the cache hit rate.
  const VEdge& x = reinterpret_cast<std::uintptr_t>(a.p) <
                           reinterpret_cast<std::uintptr_t>(b.p)
                       ? a
                       : b;
  const VEdge& y = (&x == &a) ? b : a;
  if (CachedVEdge cached; addVTable_.lookup(x, y, cached, revalidator())) {
    return rehydrate(cached);
  }

  assert(!x.p->isTerminal() && x.p->v == y.p->v);
  const Qubit var = x.p->v;
  std::array<VEdge, 2> r;
  const auto child = [&](std::size_t i, std::size_t sub) {
    VEdge xe = x.p->e[i];
    if (!xe.w->exactlyZero()) {
      xe.w = clookup(*x.w * *xe.w);
    }
    VEdge ye = y.p->e[i];
    if (!ye.w->exactlyZero()) {
      ye.w = clookup(*y.w * *ye.w);
    }
    r[i] = addRec(xe, ye, sub);
  };
  if (spawn > 0 && pool_ != nullptr) {
    forkJoin(2, [&](std::size_t i) { child(i, spawn - 1); });
  } else {
    for (std::size_t i = 0; i < 2; ++i) {
      child(i, 0);
    }
  }
  VEdge result = makeVNode(var, r);
  const CachedVEdge cached{result.p, *result.w};
  addVTable_.insert(x, y, cached, opStamp(x, y, cached));
  return result;
}

MEdge Package::addRec(const MEdge& a, const MEdge& b, std::size_t spawn) {
  ++stats_.recursiveAddCalls;
  pollAbort();
  if (a.w->exactlyZero()) {
    return b;
  }
  if (b.w->exactlyZero()) {
    return a;
  }
  if (a.p == b.p) {
    const CWeight w = clookup(*a.w + *b.w);
    return w->exactlyZero() ? mZero() : MEdge{a.p, w};
  }

  const MEdge& x = reinterpret_cast<std::uintptr_t>(a.p) <
                           reinterpret_cast<std::uintptr_t>(b.p)
                       ? a
                       : b;
  const MEdge& y = (&x == &a) ? b : a;
  if (CachedMEdge cached; addMTable_.lookup(x, y, cached, revalidator())) {
    return rehydrate(cached);
  }

  assert(!x.p->isTerminal() && x.p->v == y.p->v);
  const Qubit var = x.p->v;
  std::array<MEdge, 4> r;
  const auto child = [&](std::size_t i, std::size_t sub) {
    MEdge xe = x.p->e[i];
    if (!xe.w->exactlyZero()) {
      xe.w = clookup(*x.w * *xe.w);
    }
    MEdge ye = y.p->e[i];
    if (!ye.w->exactlyZero()) {
      ye.w = clookup(*y.w * *ye.w);
    }
    r[i] = addRec(xe, ye, sub);
  };
  if (spawn > 0 && pool_ != nullptr) {
    forkJoin(4, [&](std::size_t i) { child(i, spawn - 1); });
  } else {
    for (std::size_t i = 0; i < 4; ++i) {
      child(i, 0);
    }
  }
  MEdge result = makeMNode(var, r);
  const CachedMEdge cached{result.p, *result.w};
  addMTable_.insert(x, y, cached, opStamp(x, y, cached));
  return result;
}

// ------------------------------------------------------------ multiplication

VEdge Package::multiply(const MEdge& m, const VEdge& v) {
  const OpGuard guard(*this, "multiply(MxV)");
  const obs::ScopedSpan span("dd.multiply.mv", obs::cat::kDd);
  ++stats_.matrixVectorMultiplications;
  if (m.w->exactlyZero() || v.w->exactlyZero()) {
    return vZero();
  }
  // Structure-aware short circuit: a (scalar multiple of the) identity acts
  // trivially, no recursion or cache traffic needed.
  if (m.p->isIdentity() && !m.p->isTerminal() && m.p->v == v.p->v) {
    ++stats_.identitySkipsMV;
    const CWeight w = clookup(*m.w * *v.w);
    return w->exactlyZero() ? vZero() : VEdge{v.p, w};
  }
  VEdge r = m.p->isTerminal()
                ? vOneTerminal()
                : mulNodesMV(m.p, v.p, spawnBudget(m.p->v));
  if (r.w->exactlyZero()) {
    return vZero();
  }
  const CWeight w = clookup(*m.w * *v.w * *r.w);
  return w->exactlyZero() ? vZero() : VEdge{r.p, w};
}

// Core of the paper's Fig. 3: four sub-products combined into two
// intermediate vectors which are then added (Fig. 4). Weights of the operand
// edges are factored out by the caller, so the cache is keyed on node pairs
// and a cached product is reusable under any scalar prefactor.
VEdge Package::mulNodesMV(MNode* a, VNode* b, std::size_t spawn) {
  ++stats_.recursiveMulVCalls;
  pollAbort();
  assert(!a->isTerminal() && a->v == b->v);
  // I·v = v: gate DDs pad every non-target level with explicit identity
  // chains; the cached flag resolves the whole sub-multiplication in O(1)
  // instead of descending the chain to the terminal.
  if (a->isIdentity()) {
    ++stats_.identitySkipsMV;
    return {b, cone()};
  }
  const MEdge ka{a, cone()};
  const VEdge kb{b, cone()};
  if (CachedVEdge cached; mulMVTable_.lookup(ka, kb, cached, revalidator())) {
    return rehydrate(cached);
  }

  const Qubit var = a->v;
  std::array<VEdge, 2> r;
  const auto half = [&](std::size_t i, std::size_t sub) {
    VEdge sum = vZero();
    for (std::size_t k = 0; k < 2; ++k) {
      const MEdge& me = a->e[2 * i + k];
      const VEdge& ve = b->e[k];
      if (me.w->exactlyZero() || ve.w->exactlyZero()) {
        continue;
      }
      VEdge prod;
      if (me.p->isTerminal()) {
        assert(ve.p->isTerminal());
        prod = {&vTerminal_, clookup(*me.w * *ve.w)};
      } else if (me.p->isIdentity()) {
        ++stats_.identitySkipsMV;
        prod = {ve.p, clookup(*me.w * *ve.w)};
      } else {
        const VEdge subProd = mulNodesMV(me.p, ve.p, sub);
        prod = subProd.w->exactlyZero()
                   ? vZero()
                   : VEdge{subProd.p, clookup(*me.w * *ve.w * *subProd.w)};
      }
      sum = sum.w->exactlyZero() ? prod : addRec(sum, prod, sub);
    }
    r[i] = sum;
  };
  if (spawn > 0 && pool_ != nullptr) {
    forkJoin(2, [&](std::size_t i) { half(i, spawn - 1); });
  } else {
    half(0, 0);
    half(1, 0);
  }
  VEdge result = makeVNode(var, r);
  const CachedVEdge cached{result.p, *result.w};
  mulMVTable_.insert(ka, kb, cached, opStamp(ka, kb, cached));
  return result;
}

MEdge Package::multiply(const MEdge& a, const MEdge& b) {
  const OpGuard guard(*this, "multiply(MxM)");
  const obs::ScopedSpan span("dd.multiply.mm", obs::cat::kDd);
  ++stats_.matrixMatrixMultiplications;
  if (a.w->exactlyZero() || b.w->exactlyZero()) {
    return mZero();
  }
  // Structure-aware short circuits: I·M = M and M·I = M up to a scalar.
  if (a.p->isIdentity() && !a.p->isTerminal() && a.p->v == b.p->v) {
    ++stats_.identitySkipsMM;
    const CWeight w = clookup(*a.w * *b.w);
    return w->exactlyZero() ? mZero() : MEdge{b.p, w};
  }
  if (b.p->isIdentity() && !b.p->isTerminal() && a.p->v == b.p->v) {
    ++stats_.identitySkipsMM;
    const CWeight w = clookup(*a.w * *b.w);
    return w->exactlyZero() ? mZero() : MEdge{a.p, w};
  }
  MEdge r = a.p->isTerminal()
                ? mOneTerminal()
                : mulNodesMM(a.p, b.p, spawnBudget(a.p->v));
  if (r.w->exactlyZero()) {
    return mZero();
  }
  const CWeight w = clookup(*a.w * *b.w * *r.w);
  return w->exactlyZero() ? mZero() : MEdge{r.p, w};
}

MEdge Package::mulNodesMM(MNode* a, MNode* b, std::size_t spawn) {
  ++stats_.recursiveMulMCalls;
  pollAbort();
  assert(!a->isTerminal() && a->v == b->v);
  // I·M = M / M·I = M without touching the cache or descending the chain.
  if (a->isIdentity()) {
    ++stats_.identitySkipsMM;
    return {b, cone()};
  }
  if (b->isIdentity()) {
    ++stats_.identitySkipsMM;
    return {a, cone()};
  }
  const MEdge ka{a, cone()};
  const MEdge kb{b, cone()};
  if (CachedMEdge cached; mulMMTable_.lookup(ka, kb, cached, revalidator())) {
    return rehydrate(cached);
  }

  const Qubit var = a->v;
  // Product of one quadrant pair (operand weights folded into the result).
  const auto mulEdges = [this](const MEdge& ae, const MEdge& be,
                               std::size_t sub) -> MEdge {
    if (ae.w->exactlyZero() || be.w->exactlyZero()) {
      return mZero();
    }
    if (ae.p->isTerminal()) {
      assert(be.p->isTerminal());
      return {&mTerminal_, clookup(*ae.w * *be.w)};
    }
    if (ae.p->isIdentity()) {
      ++stats_.identitySkipsMM;
      return {be.p, clookup(*ae.w * *be.w)};
    }
    if (be.p->isIdentity()) {
      ++stats_.identitySkipsMM;
      return {ae.p, clookup(*ae.w * *be.w)};
    }
    const MEdge subProd = mulNodesMM(ae.p, be.p, sub);
    return subProd.w->exactlyZero()
               ? mZero()
               : MEdge{subProd.p, clookup(*ae.w * *be.w * *subProd.w)};
  };

  std::array<MEdge, 4> r;
  if (a->isDiagonal() && b->isDiagonal()) {
    // diag·diag stays diagonal: both off-diagonal quadrants (and every
    // cross term of the diagonal ones) vanish structurally.
    ++stats_.diagonalFastPathsMM;
    r[1] = mZero();
    r[2] = mZero();
    if (spawn > 0 && pool_ != nullptr) {
      forkJoin(2, [&](std::size_t t) {
        const std::size_t i = t == 0 ? 0 : 3;
        r[i] = mulEdges(a->e[i], b->e[i], spawn - 1);
      });
    } else {
      r[0] = mulEdges(a->e[0], b->e[0], 0);
      r[3] = mulEdges(a->e[3], b->e[3], 0);
    }
  } else {
    const auto quadrant = [&](std::size_t i, std::size_t j, std::size_t sub) {
      MEdge sum = mZero();
      for (std::size_t k = 0; k < 2; ++k) {
        const MEdge prod = mulEdges(a->e[2 * i + k], b->e[2 * k + j], sub);
        if (prod.w->exactlyZero()) {
          continue;
        }
        sum = sum.w->exactlyZero() ? prod : addRec(sum, prod, sub);
      }
      r[2 * i + j] = sum;
    };
    if (spawn > 0 && pool_ != nullptr) {
      forkJoin(4, [&](std::size_t t) { quadrant(t >> 1U, t & 1U, spawn - 1); });
    } else {
      for (std::size_t i = 0; i < 2; ++i) {
        for (std::size_t j = 0; j < 2; ++j) {
          quadrant(i, j, 0);
        }
      }
    }
  }
  MEdge result = makeMNode(var, r);
  const CachedMEdge cached{result.p, *result.w};
  mulMMTable_.insert(ka, kb, cached, opStamp(ka, kb, cached));
  return result;
}

// -------------------------------------------------------- kronecker product

MEdge Package::kronecker(const MEdge& top, const MEdge& bottom) {
  const OpGuard guard(*this, "kronecker(matrix)");
  return kronRec(top, bottom);
}

VEdge Package::kronecker(const VEdge& top, const VEdge& bottom) {
  const OpGuard guard(*this, "kronecker(vector)");
  return kronRec(top, bottom);
}

MEdge Package::kronRec(const MEdge& a, const MEdge& b) {
  pollAbort();
  if (a.w->exactlyZero() || b.w->exactlyZero()) {
    return mZero();
  }
  if (a.p->isTerminal()) {
    return {b.p, clookup(*a.w * *b.w)};
  }
  if (CachedMEdge cached; kronMTable_.lookup(a, b, cached, revalidator())) {
    return rehydrate(cached);
  }
  const Qubit shift = b.p->isTerminal() ? 0 : b.p->v + 1;
  // kronRec consumes full edges, so the children's weights are folded in by
  // the recursion; only a's own top weight remains to be applied.
  std::array<MEdge, 4> children;
  for (std::size_t i = 0; i < 4; ++i) {
    children[i] = kronRec(a.p->e[i], b);
  }
  MEdge result = makeMNode(a.p->v + shift, children);
  result = {result.p, clookup(*result.w * *a.w)};
  const CachedMEdge cached{result.p, *result.w};
  kronMTable_.insert(a, b, cached, opStamp(a, b, cached));
  return result;
}

VEdge Package::kronRec(const VEdge& a, const VEdge& b) {
  pollAbort();
  if (a.w->exactlyZero() || b.w->exactlyZero()) {
    return vZero();
  }
  if (a.p->isTerminal()) {
    return {b.p, clookup(*a.w * *b.w)};
  }
  if (CachedVEdge cached; kronVTable_.lookup(a, b, cached, revalidator())) {
    return rehydrate(cached);
  }
  const Qubit shift = b.p->isTerminal() ? 0 : b.p->v + 1;
  std::array<VEdge, 2> children;
  for (std::size_t i = 0; i < 2; ++i) {
    children[i] = kronRec(a.p->e[i], b);
  }
  VEdge result = makeVNode(a.p->v + shift, children);
  result = {result.p, clookup(*result.w * *a.w)};
  const CachedVEdge cached{result.p, *result.w};
  kronVTable_.insert(a, b, cached, opStamp(a, b, cached));
  return result;
}

// ------------------------------------------------------ conjugate transpose

MEdge Package::conjugateTranspose(const MEdge& m) {
  const OpGuard guard(*this, "conjugateTranspose");
  MEdge r = transposeRec({m.p, cone()});
  const CWeight w = clookup(m.w->conj() * *r.w);
  return w->exactlyZero() ? mZero() : MEdge{r.p, w};
}

MEdge Package::transposeRec(const MEdge& m) {
  pollAbort();
  if (m.p->isTerminal()) {
    return {m.p, m.w};
  }
  // Identity chains are real and symmetric: their conjugate transpose is
  // the chain itself (transposeRec is always entered with weight one).
  if (m.p->isIdentity()) {
    return m;
  }
  if (CachedMEdge cached; transposeTable_.lookup(m, cached, unaryRevalidator())) {
    return rehydrate(cached);
  }
  std::array<MEdge, 4> children;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      const MEdge& src = m.p->e[2 * j + i];  // transpose: swap quadrant index
      if (src.w->exactlyZero()) {
        children[2 * i + j] = mZero();
      } else {
        MEdge sub = transposeRec({src.p, cone()});
        children[2 * i + j] = {sub.p, clookup(src.w->conj() * *sub.w)};
      }
    }
  }
  MEdge result = makeMNode(m.p->v, children);
  const CachedMEdge cached{result.p, *result.w};
  transposeTable_.insert(m, cached, opStamp(m, cached));
  return result;
}

// ------------------------------------------------- inner products and norms

ComplexValue Package::innerProduct(const VEdge& a, const VEdge& b) {
  const OpGuard guard(*this, "innerProduct");
  if (a.w->exactlyZero() || b.w->exactlyZero()) {
    return {0.0, 0.0};
  }
  return a.w->conj() * *b.w * innerProductRec(a.p, b.p);
}

ComplexValue Package::innerProductRec(VNode* a, VNode* b) {
  pollAbort();
  if (a->isTerminal()) {
    assert(b->isTerminal());
    return {1.0, 0.0};
  }
  const VEdge ka{a, cone()};
  const VEdge kb{b, cone()};
  if (CVal cached; innerTable_.lookup(ka, kb, cached, revalidator())) {
    return cached.v;
  }
  ComplexValue sum{0.0, 0.0};
  for (std::size_t i = 0; i < 2; ++i) {
    const VEdge& ea = a->e[i];
    const VEdge& eb = b->e[i];
    if (ea.w->exactlyZero() || eb.w->exactlyZero()) {
      continue;
    }
    sum += ea.w->conj() * *eb.w * innerProductRec(ea.p, eb.p);
  }
  const CVal cached{sum};
  innerTable_.insert(ka, kb, cached, opStamp(ka, kb, cached));
  return sum;
}

double Package::fidelity(const VEdge& a, const VEdge& b) {
  return innerProduct(a, b).mag2();
}

ComplexValue Package::expectationValue(const MEdge& observable, const VEdge& v) {
  return innerProduct(v, multiply(observable, v));
}

ComplexValue Package::trace(const MEdge& m) {
  const OpGuard guard(*this, "trace");
  if (m.w->exactlyZero()) {
    return {0.0, 0.0};
  }
  return *m.w * traceNode(m.p);
}

ComplexValue Package::traceNode(MNode* p) {
  pollAbort();
  if (p->isTerminal()) {
    return {1.0, 0.0};
  }
  // Tr(I_{2^k}) = 2^k for an identity chain topped at level p->v.
  if (p->isIdentity()) {
    return {std::ldexp(1.0, p->v + 1), 0.0};
  }
  const MEdge key{p, cone()};
  if (CVal cached; traceTable_.lookup(key, cached, unaryRevalidator())) {
    return cached.v;
  }
  ComplexValue sum{0.0, 0.0};
  for (const std::size_t i : {0UL, 3UL}) {  // diagonal quadrants
    const MEdge& e = p->e[i];
    if (!e.w->exactlyZero()) {
      sum += *e.w * traceNode(e.p);
    }
  }
  const CVal cached{sum};
  traceTable_.insert(key, cached, opStamp(key, cached));
  return sum;
}

double Package::norm2(const VEdge& v) {
  const OpGuard guard(*this, "norm2");
  if (v.w->exactlyZero()) {
    return 0.0;
  }
  return v.w->mag2() * normNode(v.p);
}

double Package::normNode(VNode* p) {
  pollAbort();
  if (p->isTerminal()) {
    return 1.0;
  }
  const VEdge key{p, cone()};
  if (DVal cached; normTable_.lookup(key, cached, unaryRevalidator())) {
    return cached.d;
  }
  double sum = 0.0;
  for (const auto& e : p->e) {
    if (!e.w->exactlyZero()) {
      sum += e.w->mag2() * normNode(e.p);
    }
  }
  const DVal cached{sum};
  normTable_.insert(key, cached, opStamp(key, cached));
  return sum;
}

// ---------------------------------------------------------------- inspection

ComplexValue Package::getAmplitude(const VEdge& v, std::uint64_t index) {
  ComplexValue amp = *v.w;
  const VNode* p = v.p;
  while (!p->isTerminal()) {
    const VEdge& e = p->e[(index >> p->v) & 1U];
    if (e.w->exactlyZero()) {
      return {0.0, 0.0};
    }
    amp *= *e.w;
    p = e.p;
  }
  return amp;
}

namespace {
void fillVector(const VEdge& e, Qubit level, std::uint64_t offset,
                ComplexValue factor, std::vector<ComplexValue>& out) {
  if (e.w->exactlyZero()) {
    return;
  }
  const ComplexValue f = factor * *e.w;
  if (level < 0) {
    out[offset] = f;
    return;
  }
  const std::uint64_t half = 1ULL << level;
  fillVector(e.p->e[0], level - 1, offset, f, out);
  fillVector(e.p->e[1], level - 1, offset + half, f, out);
}

void fillMatrix(const MEdge& e, Qubit level, std::uint64_t rowOff,
                std::uint64_t colOff, std::uint64_t dim, ComplexValue factor,
                std::vector<ComplexValue>& out) {
  if (e.w->exactlyZero()) {
    return;
  }
  const ComplexValue f = factor * *e.w;
  if (level < 0) {
    out[rowOff * dim + colOff] = f;
    return;
  }
  const std::uint64_t half = 1ULL << level;
  for (std::size_t i = 0; i < 4; ++i) {
    fillMatrix(e.p->e[i], level - 1, rowOff + ((i & 2U) != 0 ? half : 0),
               colOff + ((i & 1U) != 0 ? half : 0), dim, f, out);
  }
}
}  // namespace

std::vector<ComplexValue> Package::getVector(const VEdge& v) {
  std::vector<ComplexValue> out(1ULL << numQubits_, ComplexValue{});
  fillVector(v, static_cast<Qubit>(numQubits_) - 1, 0, {1.0, 0.0}, out);
  return out;
}

std::vector<ComplexValue> Package::getMatrix(const MEdge& m) {
  const std::uint64_t dim = 1ULL << numQubits_;
  std::vector<ComplexValue> out(dim * dim, ComplexValue{});
  fillMatrix(m, static_cast<Qubit>(numQubits_) - 1, 0, 0, dim, {1.0, 0.0}, out);
  return out;
}

namespace {
template <std::size_t Arity>
std::size_t countNodes(Node<Arity>* p, std::uint32_t mark) {
  if (p->visit == mark) {
    return 0;
  }
  p->visit = mark;
  if (p->isTerminal()) {
    return 1;
  }
  std::size_t n = 1;
  for (const auto& e : p->e) {
    n += countNodes(e.p, mark);
  }
  return n;
}
}  // namespace

std::size_t Package::size(const VEdge& v) const {
  // Allocation-free DFS: stamp visited nodes with a fresh sweep number
  // instead of building a hash set. size() runs after every simulation
  // step, so this is on the per-gate hot path.
  return countNodes(v.p, nextVisitMark());
}

std::size_t Package::size(const MEdge& m) const {
  return countNodes(m.p, nextVisitMark());
}

// --------------------------------------------------------------- measurement

std::uint64_t Package::measureAll(VEdge& v, std::mt19937_64& rng, bool collapse) {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::uint64_t result = 0;
  const VNode* p = v.p;
  while (p != nullptr && !p->isTerminal()) {
    const double m0 =
        p->e[0].w->exactlyZero() ? 0.0 : p->e[0].w->mag2() * normNode(p->e[0].p);
    const double m1 =
        p->e[1].w->exactlyZero() ? 0.0 : p->e[1].w->mag2() * normNode(p->e[1].p);
    const double p1 = m1 / (m0 + m1);
    const bool one = dist(rng) < p1;
    if (one) {
      result |= 1ULL << p->v;
    }
    p = p->e[one ? 1 : 0].p;
  }
  if (collapse) {
    VEdge collapsed = makeBasisState(result);
    incRef(collapsed);
    decRef(v);
    v = collapsed;
  }
  return result;
}

double Package::probabilityOfOne(const VEdge& v, Qubit q) {
  if (q < 0 || static_cast<std::size_t>(q) >= numQubits_) {
    throw std::invalid_argument("probabilityOfOne: qubit out of range");
  }
  if (v.w->exactlyZero()) {
    return 0.0;
  }
  // Mass of all basis states with bit q set, divided by the total norm.
  std::unordered_map<const VNode*, double> memo;
  auto massOne = [&](auto&& self, const VNode* p) -> double {
    if (const auto it = memo.find(p); it != memo.end()) {
      return it->second;
    }
    double m = 0.0;
    if (p->v == q) {
      const VEdge& e1 = p->e[1];
      m = e1.w->exactlyZero() ? 0.0 : e1.w->mag2() * normNode(e1.p);
    } else {
      assert(p->v > q);
      for (const auto& e : p->e) {
        if (!e.w->exactlyZero()) {
          m += e.w->mag2() * self(self, e.p);
        }
      }
    }
    memo.emplace(p, m);
    return m;
  };
  const double total = norm2(v);
  return v.w->mag2() * massOne(massOne, v.p) / total;
}

std::map<std::uint64_t, std::size_t> Package::sampleCounts(const VEdge& v,
                                                           std::size_t shots,
                                                           std::mt19937_64& rng) {
  std::map<std::uint64_t, std::size_t> histogram;
  VEdge state = v;  // measureAll without collapse leaves the edge untouched
  for (std::size_t s = 0; s < shots; ++s) {
    ++histogram[measureAll(state, rng, /*collapse=*/false)];
  }
  return histogram;
}

int Package::measureOneCollapsing(VEdge& v, Qubit q, std::mt19937_64& rng) {
  if (q < 0 || static_cast<std::size_t>(q) >= numQubits_) {
    throw std::invalid_argument("measureOneCollapsing: qubit out of range");
  }
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  const double p1 = probabilityOfOne(v, q);
  const bool one = dist(rng) < p1;
  const double prob = one ? p1 : 1.0 - p1;

  static constexpr GateMatrix kProject0{
      ComplexValue{1, 0}, ComplexValue{0, 0}, ComplexValue{0, 0}, ComplexValue{0, 0}};
  static constexpr GateMatrix kProject1{
      ComplexValue{0, 0}, ComplexValue{0, 0}, ComplexValue{0, 0}, ComplexValue{1, 0}};
  const MEdge projector = makeGateDD(one ? kProject1 : kProject0, q);
  VEdge projected = multiply(projector, v);
  projected.w = clookup(*projected.w * (1.0 / std::sqrt(prob)));
  incRef(projected);
  decRef(v);
  v = projected;
  return one ? 1 : 0;
}

}  // namespace ddsim::dd
