/// \file chrome_trace.hpp
/// \brief Chrome trace-event JSON export of a TraceCollector session, plus
///        a structural validator for the emitted files.
///
/// The export follows the "JSON Object Format" of the Trace Event spec:
/// `{"traceEvents": [...]}` with Duration ('B'/'E') and Instant ('i')
/// events, microsecond timestamps, and one `tid` per recorded thread
/// (thread-name metadata events label the tracks). Files load directly in
/// chrome://tracing and in Perfetto's legacy-trace importer.
///
/// The validator re-parses an emitted file with a minimal JSON reader and
/// checks the invariants the exporter guarantees: the document is valid
/// JSON of the expected shape, 'B'/'E' events are brace-balanced per track,
/// and timestamps are monotone (non-decreasing) per track. It backs both
/// the unit tests and the CI job that smoke-tests `ddsim_serve --trace-out`.

#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "obs/trace.hpp"

namespace ddsim::obs {

/// Serialize the collector's tracks as Chrome trace-event JSON. Call only
/// after the recording threads have quiesced (see the lifecycle contract in
/// trace.hpp).
void writeChromeTrace(std::ostream& os, const TraceCollector& collector);

struct TraceValidation {
  bool ok = false;
  std::string error;        ///< first violation found (empty when ok)
  std::size_t events = 0;   ///< B/E/i events checked
  std::size_t tracks = 0;   ///< distinct tids carrying events
};

/// Validate trace-event JSON text (see file comment for the checks).
[[nodiscard]] TraceValidation validateChromeTrace(const std::string& json);

/// Convenience: read and validate a file; a missing/unreadable file fails
/// with `ok == false` and a descriptive error.
[[nodiscard]] TraceValidation validateChromeTraceFile(const std::string& path);

}  // namespace ddsim::obs
