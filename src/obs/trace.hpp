/// \file trace.hpp
/// \brief Low-overhead span tracer: RAII scoped spans recorded into
///        thread-local buffers, exportable as Chrome trace-event JSON.
///
/// Design goals (see DESIGN.md, "Observability"):
///  * **Zero-cost when disabled** — every instrumentation site costs one
///    relaxed atomic load plus one predictable branch when no collector is
///    installed. No clock read, no allocation, no lock.
///  * **No cross-thread contention when enabled** — each thread appends to
///    its own buffer; the only lock is taken once per (thread, collector)
///    pair at registration.
///  * **Faithful nesting** — begin/end records are appended in program
///    order from the owning thread, so per-track event streams are
///    monotone in time and brace-balanced by construction (the exporter
///    never needs to sort or re-pair).
///
/// Lifecycle contract: install() before the threads to be traced start
/// recording, stop() + export only after they have quiesced (worker pools
/// joined). A span that begins under a collector must end before that
/// collector is destroyed; stopping merely makes new spans no-ops.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ddsim::obs {

/// Span categories — rendered as the Chrome trace "cat" field so the
/// timeline can be filtered per layer.
namespace cat {
inline constexpr const char* kDd = "dd";          ///< package operations
inline constexpr const char* kSim = "sim";        ///< simulator phases
inline constexpr const char* kServe = "serve";    ///< job lifecycle
inline constexpr const char* kRouter = "router";  ///< distributed routing
}  // namespace cat

/// Sentinel for "no numeric argument attached to this event".
inline constexpr std::uint64_t kNoEventId = ~0ULL;

/// One begin/end/instant record. `name` and `category` must be string
/// literals (or otherwise outlive the collector) — events never own memory.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  std::uint64_t timeNs = 0;  ///< since the collector's epoch
  std::uint64_t id = kNoEventId;
  char phase = 'i';  ///< 'B' begin, 'E' end, 'i' instant
};

class TraceCollector;

namespace detail {

/// Per-thread event buffer, owned by the collector, written only by the
/// registering thread. Reading (export) happens after the writers quiesced.
struct ThreadTrack {
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;  ///< events beyond the per-thread cap
  std::uint64_t osThreadId = 0;
  /// Human-readable track name (see nameCurrentThreadTrack). Empty tracks
  /// export as "track-<tid>".
  std::string name;

  void push(const TraceEvent& e);
};

/// Bounds each thread's buffer so a runaway run cannot exhaust memory;
/// overflow increments `dropped` instead (reported on export).
inline constexpr std::size_t kMaxEventsPerTrack = 1U << 22;

TraceCollector* activeCollector() noexcept;
ThreadTrack* trackFor(TraceCollector* collector);

}  // namespace detail

/// Owns every thread's event buffer for one tracing session.
class TraceCollector {
 public:
  TraceCollector();
  ~TraceCollector();

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Make this collector the process-wide active one. Only one collector
  /// may be installed at a time (install throws std::logic_error if
  /// another is active).
  void install();
  /// Deactivate (idempotent). New spans become no-ops; already-begun spans
  /// still record their end into this collector's buffers.
  void stop() noexcept;
  [[nodiscard]] bool installed() const noexcept;

  /// Record an instant event on the calling thread's track (no-op unless
  /// this collector is installed).
  void instant(const char* name, const char* category,
               std::uint64_t id = kNoEventId);

  /// Tracks in registration order (stable track ids for the exporter).
  /// Only meaningful after the recording threads quiesced.
  [[nodiscard]] std::vector<const detail::ThreadTrack*> tracks() const;
  /// Total events recorded across all tracks.
  [[nodiscard]] std::size_t eventCount() const;
  /// Total events dropped across all tracks (per-thread cap overflow).
  [[nodiscard]] std::uint64_t droppedCount() const;

 private:
  friend detail::ThreadTrack* detail::trackFor(TraceCollector*);

  [[nodiscard]] std::uint64_t nowNs() const noexcept;
  detail::ThreadTrack* registerThread();

  friend class ScopedSpan;

  std::uint64_t generation_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<detail::ThreadTrack>> tracks_;
};

/// RAII span. Instantiate at the top of the region to be timed:
///
///   obs::ScopedSpan span("dd.multiply.mv", obs::cat::kDd);
///
/// When no collector is installed, construction is one relaxed load + one
/// branch and destruction one branch.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* category,
                      std::uint64_t id = kNoEventId) noexcept {
    if (TraceCollector* c = detail::activeCollector()) {
      begin(c, name, category, id);
    }
  }
  ~ScopedSpan() {
    if (track_ != nullptr) {
      end();
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void begin(TraceCollector* c, const char* name, const char* category,
             std::uint64_t id) noexcept;
  void end() noexcept;

  detail::ThreadTrack* track_ = nullptr;
  TraceCollector* collector_ = nullptr;
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  std::uint64_t id_ = kNoEventId;
};

/// Record an instant event on the active collector, if any (one relaxed
/// load + branch when tracing is disabled).
inline void traceInstant(const char* name, const char* category,
                         std::uint64_t id = kNoEventId) {
  if (TraceCollector* c = detail::activeCollector()) {
    c->instant(name, category, id);
  }
}

/// Name the calling thread's track on the active collector (no-op when
/// tracing is disabled). The exporter emits the name as the Chrome trace
/// thread_name metadata, so e.g. the pipeline's builder threads show up as
/// "sim.builder.0" … "sim.builder.N" instead of "track-3". Takes ownership
/// of a std::string so dynamically numbered tracks (one per builder) need
/// no static storage. Safe to call repeatedly; the latest name wins.
void nameCurrentThreadTrack(std::string name);

}  // namespace ddsim::obs
