#include "obs/chrome_trace.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>
#include <variant>
#include <vector>

namespace ddsim::obs {

// ------------------------------------------------------------------ export

namespace {

void writeEscaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\';
    }
    os << c;
  }
}

}  // namespace

void writeChromeTrace(std::ostream& os, const TraceCollector& collector) {
  const auto tracks = collector.tracks();
  os << "{\"traceEvents\": [";
  bool first = true;
  for (std::size_t tid = 0; tid < tracks.size(); ++tid) {
    if (!first) {
      os << ",";
    }
    first = false;
    // Label the track; metadata events carry no timestamp semantics.
    os << "\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": "
       << tid << ", \"args\": {\"name\": \"";
    if (tracks[tid]->name.empty()) {
      os << "track-" << tid;
    } else {
      writeEscaped(os, tracks[tid]->name.c_str());
    }
    os << "\"}}";
    for (const TraceEvent& e : tracks[tid]->events) {
      os << ",\n{\"name\": \"";
      writeEscaped(os, e.name);
      os << "\", \"cat\": \"";
      writeEscaped(os, e.category);
      os << "\", \"ph\": \"" << e.phase << "\", \"pid\": 0, \"tid\": " << tid;
      // Microseconds with nanosecond resolution kept in the fraction.
      os << ", \"ts\": " << e.timeNs / 1000 << "." << (e.timeNs % 1000) / 100
         << (e.timeNs % 100) / 10 << e.timeNs % 10;
      if (e.phase == 'i') {
        os << ", \"s\": \"t\"";
      }
      if (e.id != kNoEventId) {
        os << ", \"args\": {\"id\": " << e.id << "}";
      }
      os << "}";
    }
  }
  os << "\n], \"displayTimeUnit\": \"ms\"";
  if (const std::uint64_t dropped = collector.droppedCount(); dropped > 0) {
    os << ", \"metadata\": {\"dropped_events\": " << dropped << "}";
  }
  os << "}\n";
}

// -------------------------------------------------------------- validation

namespace {

/// Minimal recursive-descent JSON reader — just enough to re-parse the
/// exporter's output (and reject malformed files) without an external
/// dependency. Numbers are doubles; object member order is not preserved.
struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v = nullptr;

  [[nodiscard]] const JsonObject* object() const {
    return std::get_if<JsonObject>(&v);
  }
  [[nodiscard]] const JsonArray* array() const {
    return std::get_if<JsonArray>(&v);
  }
  [[nodiscard]] const std::string* string() const {
    return std::get_if<std::string>(&v);
  }
  [[nodiscard]] const double* number() const {
    return std::get_if<double>(&v);
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> parse(std::string& error) {
    JsonValue value;
    if (!parseValue(value)) {
      error = error_.empty() ? "malformed JSON" : error_;
      return std::nullopt;
    }
    skipWhitespace();
    if (pos_ != text_.size()) {
      error = "trailing characters after JSON document";
      return std::nullopt;
    }
    return value;
  }

 private:
  bool fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool parseValue(JsonValue& out) {
    skipWhitespace();
    if (pos_ >= text_.size()) {
      return fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{': return parseObject(out);
      case '[': return parseArray(out);
      case '"': return parseString(out);
      case 't':
      case 'f':
      case 'n': return parseKeyword(out);
      default: return parseNumber(out);
    }
  }

  bool parseObject(JsonValue& out) {
    ++pos_;  // '{'
    JsonObject obj;
    skipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      out.v = std::move(obj);
      return true;
    }
    for (;;) {
      JsonValue key;
      skipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"' || !parseString(key)) {
        return fail("expected object key string");
      }
      if (!consume(':')) {
        return false;
      }
      JsonValue value;
      if (!parseValue(value)) {
        return false;
      }
      obj.emplace(std::move(*key.string()), std::move(value));
      skipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (!consume('}')) {
      return false;
    }
    out.v = std::move(obj);
    return true;
  }

  bool parseArray(JsonValue& out) {
    ++pos_;  // '['
    JsonArray arr;
    skipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      out.v = std::move(arr);
      return true;
    }
    for (;;) {
      JsonValue value;
      if (!parseValue(value)) {
        return false;
      }
      arr.push_back(std::move(value));
      skipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (!consume(']')) {
      return false;
    }
    out.v = std::move(arr);
    return true;
  }

  bool parseString(JsonValue& out) {
    ++pos_;  // '"'
    std::string s;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return fail("unterminated escape");
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) {
              return fail("truncated \\u escape");
            }
            pos_ += 4;   // validated for length only
            c = '?';     // code point not needed for validation
            break;
          default: return fail("unknown escape");
        }
      }
      s += c;
    }
    if (pos_ >= text_.size()) {
      return fail("unterminated string");
    }
    ++pos_;  // closing '"'
    out.v = std::move(s);
    return true;
  }

  bool parseKeyword(JsonValue& out) {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out.v = true;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out.v = false;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      out.v = nullptr;
      return true;
    }
    return fail("unknown keyword");
  }

  bool parseNumber(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return fail("expected a value");
    }
    try {
      out.v = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      return fail("malformed number");
    }
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

TraceValidation failValidation(std::string error) {
  TraceValidation v;
  v.error = std::move(error);
  return v;
}

}  // namespace

TraceValidation validateChromeTrace(const std::string& json) {
  std::string parseError;
  const auto doc = JsonParser(json).parse(parseError);
  if (!doc) {
    return failValidation("not valid JSON: " + parseError);
  }
  const JsonObject* root = doc->object();
  if (root == nullptr) {
    return failValidation("top-level value is not an object");
  }
  const auto eventsIt = root->find("traceEvents");
  if (eventsIt == root->end()) {
    return failValidation("missing \"traceEvents\" key");
  }
  const JsonArray* events = eventsIt->second.array();
  if (events == nullptr) {
    return failValidation("\"traceEvents\" is not an array");
  }

  struct TrackState {
    std::vector<std::string> stack;  ///< open span names ('B' without 'E')
    double lastTs = -1.0;
    bool sawEvent = false;
  };
  std::map<double, TrackState> perTrack;

  TraceValidation result;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonObject* e = (*events)[i].object();
    if (e == nullptr) {
      return failValidation("event " + std::to_string(i) +
                            " is not an object");
    }
    const auto phIt = e->find("ph");
    if (phIt == e->end() || phIt->second.string() == nullptr ||
        phIt->second.string()->size() != 1) {
      return failValidation("event " + std::to_string(i) +
                            " lacks a one-character \"ph\"");
    }
    const char ph = (*phIt->second.string())[0];
    if (ph == 'M') {
      continue;  // metadata events carry no timeline semantics
    }
    if (ph != 'B' && ph != 'E' && ph != 'i') {
      return failValidation("event " + std::to_string(i) +
                            " has unsupported phase '" + ph + "'");
    }
    const auto nameIt = e->find("name");
    if (nameIt == e->end() || nameIt->second.string() == nullptr) {
      return failValidation("event " + std::to_string(i) + " lacks a name");
    }
    const auto tidIt = e->find("tid");
    const auto tsIt = e->find("ts");
    if (tidIt == e->end() || tidIt->second.number() == nullptr) {
      return failValidation("event " + std::to_string(i) + " lacks a tid");
    }
    if (tsIt == e->end() || tsIt->second.number() == nullptr) {
      return failValidation("event " + std::to_string(i) + " lacks a ts");
    }
    TrackState& track = perTrack[*tidIt->second.number()];
    const double ts = *tsIt->second.number();
    if (track.sawEvent && ts < track.lastTs) {
      return failValidation(
          "event " + std::to_string(i) + " (" + *nameIt->second.string() +
          "): timestamp " + std::to_string(ts) + " < previous " +
          std::to_string(track.lastTs) + " on the same track");
    }
    track.lastTs = ts;
    track.sawEvent = true;
    if (ph == 'B') {
      track.stack.push_back(*nameIt->second.string());
    } else if (ph == 'E') {
      if (track.stack.empty()) {
        return failValidation("event " + std::to_string(i) + " (" +
                              *nameIt->second.string() +
                              "): 'E' without matching 'B'");
      }
      if (track.stack.back() != *nameIt->second.string()) {
        return failValidation("event " + std::to_string(i) + ": 'E' for \"" +
                              *nameIt->second.string() +
                              "\" but innermost open span is \"" +
                              track.stack.back() + "\"");
      }
      track.stack.pop_back();
    }
    ++result.events;
  }
  for (const auto& [tid, track] : perTrack) {
    if (!track.stack.empty()) {
      return failValidation("track " + std::to_string(tid) + " ends with " +
                            std::to_string(track.stack.size()) +
                            " unclosed span(s), innermost \"" +
                            track.stack.back() + "\"");
    }
  }
  result.tracks = perTrack.size();
  result.ok = true;
  return result;
}

TraceValidation validateChromeTraceFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return failValidation("cannot open " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return validateChromeTrace(ss.str());
}

}  // namespace ddsim::obs
