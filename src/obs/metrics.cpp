#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

namespace ddsim::obs {

std::uint64_t Gauge::toBits(double v) noexcept {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

double Gauge::fromBits(std::uint64_t b) noexcept {
  double v = 0;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

namespace {

/// Precomputed bucket upper bounds (ascending); the overflow bucket is
/// handled separately with a +inf bound.
const std::array<double, Histogram::kBuckets>& bucketBounds() {
  static const auto bounds = [] {
    std::array<double, Histogram::kBuckets> b{};
    double bound = Histogram::kFirstBound;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      b[i] = bound;
      bound *= Histogram::kGrowth;
    }
    return b;
  }();
  return bounds;
}

std::size_t bucketIndex(double value) noexcept {
  const auto& bounds = bucketBounds();
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  return static_cast<std::size_t>(it - bounds.begin());  // kBuckets = overflow
}

/// Map a snapshot bucket's upper bound back to its layout index. Bounds
/// round-trip bit-exactly through snapshots and the wire (IEEE bit
/// pattern), but match with a relative tolerance anyway so a bound that
/// went through a lossy text format still lands in the right bucket.
std::size_t boundIndex(double bound) noexcept {
  if (std::isinf(bound)) {
    return Histogram::kBuckets;  // overflow bucket
  }
  const auto& bounds = bucketBounds();
  const auto it =
      std::lower_bound(bounds.begin(), bounds.end(), bound * (1.0 - 1e-9));
  return std::min(static_cast<std::size_t>(it - bounds.begin()),
                  Histogram::kBuckets - 1);
}

/// The quantile estimator shared by live histograms and merged snapshots:
/// walk the cumulative counts, interpolate linearly inside the selected
/// bucket, clamp to the observed maximum.
double quantileFromCounts(
    const std::array<std::uint64_t, Histogram::kBuckets + 1>& counts,
    double q, double maxValue) noexcept {
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) {
    total += c;
  }
  if (total == 0) {
    return 0.0;
  }
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) {
      continue;
    }
    const double before = static_cast<double>(cumulative);
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= target) {
      if (i >= Histogram::kBuckets) {
        return maxValue;  // overflow bucket: the max is the best estimate
      }
      const double lower = i == 0 ? 0.0 : Histogram::bucketBound(i - 1);
      const double upper = Histogram::bucketBound(i);
      const double fraction = std::clamp(
          (target - before) / static_cast<double>(counts[i]), 0.0, 1.0);
      return std::min(lower + fraction * (upper - lower), maxValue);
    }
  }
  return maxValue;
}

}  // namespace

double Histogram::bucketBound(std::size_t i) noexcept {
  return i < kBuckets ? bucketBounds()[i]
                      : std::numeric_limits<double>::infinity();
}

void Histogram::observe(double value) noexcept {
  if (!(value >= 0.0)) {  // negative or NaN: clamp into the first bucket
    value = 0.0;
  }
  counts_[bucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  sumNs_.fetch_add(static_cast<std::uint64_t>(value * 1e9),
                   std::memory_order_relaxed);
  // Non-negative doubles order like their bit patterns, so an integer CAS
  // max keeps the true maximum without a lock.
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  std::uint64_t cur = maxBits_.load(std::memory_order_relaxed);
  while (cur < bits && !maxBits_.compare_exchange_weak(
                           cur, bits, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& c : counts_) {
    n += c.load(std::memory_order_relaxed);
  }
  return n;
}

double Histogram::max() const noexcept {
  const std::uint64_t bits = maxBits_.load(std::memory_order_relaxed);
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double Histogram::quantile(double q) const noexcept {
  std::array<std::uint64_t, kBuckets + 1> counts{};
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return quantileFromCounts(counts, q, max());
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  for (std::size_t i = 0; i <= kBuckets; ++i) {
    const std::uint64_t c = counts_[i].load(std::memory_order_relaxed);
    if (c > 0) {
      s.buckets.emplace_back(bucketBound(i), c);
      s.count += c;
    }
  }
  s.sum = static_cast<double>(sumNs_.load(std::memory_order_relaxed)) / 1e9;
  s.max = max();
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  return s;
}

HistogramSnapshot mergeHistogramSnapshots(const HistogramSnapshot& a,
                                          const HistogramSnapshot& b) {
  std::array<std::uint64_t, Histogram::kBuckets + 1> counts{};
  for (const HistogramSnapshot* s : {&a, &b}) {
    for (const auto& [bound, count] : s->buckets) {
      counts[boundIndex(bound)] += count;
    }
  }
  HistogramSnapshot m;
  m.sum = a.sum + b.sum;
  m.max = std::max(a.max, b.max);
  for (std::size_t i = 0; i <= Histogram::kBuckets; ++i) {
    if (counts[i] > 0) {
      m.buckets.emplace_back(Histogram::bucketBound(i), counts[i]);
      m.count += counts[i];
    }
  }
  m.p50 = quantileFromCounts(counts, 0.50, m.max);
  m.p95 = quantileFromCounts(counts, 0.95, m.max);
  m.p99 = quantileFromCounts(counts, 0.99, m.max);
  return m;
}

std::string HistogramSnapshot::toJson() const {
  std::ostringstream os;
  os << "{\"count\": " << count << ", \"sum\": " << sum << ", \"max\": " << max
     << ", \"p50\": " << p50 << ", \"p95\": " << p95 << ", \"p99\": " << p99
     << ", \"buckets\": [";
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    os << (i > 0 ? ", " : "") << "{\"le\": ";
    if (std::isinf(buckets[i].first)) {
      os << "\"+inf\"";
    } else {
      os << buckets[i].first;
    }
    os << ", \"count\": " << buckets[i].second << "}";
  }
  os << "]}";
  return os.str();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

std::string MetricsRegistry::toJson() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ", ") << "\"" << name << "\": " << c->value();
    first = false;
  }
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ", ") << "\"" << name << "\": " << g->value();
    first = false;
  }
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ", ") << "\"" << name
       << "\": " << h->snapshot().toJson();
    first = false;
  }
  os << "}";
  return os.str();
}

}  // namespace ddsim::obs
