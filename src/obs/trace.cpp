#include "obs/trace.hpp"

#include <stdexcept>
#include <thread>

namespace ddsim::obs {

namespace {

/// The process-wide active collector. Relaxed loads on the hot path are
/// sufficient: a thread that observes the pointer late merely skips a few
/// leading events, and buffer registration synchronizes via the collector
/// mutex before any write.
std::atomic<TraceCollector*> g_active{nullptr};

/// Bumped on every install so stale thread-local registrations from an
/// earlier collector (same or different address) are never reused.
std::atomic<std::uint64_t> g_generation{0};

struct TlsSlot {
  std::uint64_t generation = 0;
  detail::ThreadTrack* track = nullptr;
};

thread_local TlsSlot tlsSlot;

std::uint64_t osThreadId() noexcept {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

}  // namespace

namespace detail {

void ThreadTrack::push(const TraceEvent& e) {
  if (events.size() >= kMaxEventsPerTrack) {
    ++dropped;
    return;
  }
  events.push_back(e);
}

TraceCollector* activeCollector() noexcept {
  return g_active.load(std::memory_order_relaxed);
}

ThreadTrack* trackFor(TraceCollector* collector) {
  if (tlsSlot.generation != collector->generation_ ||
      tlsSlot.track == nullptr) {
    tlsSlot.track = collector->registerThread();
    tlsSlot.generation = collector->generation_;
  }
  return tlsSlot.track;
}

}  // namespace detail

TraceCollector::TraceCollector()
    : generation_(0), epoch_(std::chrono::steady_clock::now()) {}

TraceCollector::~TraceCollector() { stop(); }

void TraceCollector::install() {
  generation_ = g_generation.fetch_add(1, std::memory_order_relaxed) + 1;
  TraceCollector* expected = nullptr;
  if (!g_active.compare_exchange_strong(expected, this,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
    throw std::logic_error("TraceCollector: another collector is installed");
  }
}

void TraceCollector::stop() noexcept {
  TraceCollector* expected = this;
  g_active.compare_exchange_strong(expected, nullptr,
                                   std::memory_order_release,
                                   std::memory_order_relaxed);
}

bool TraceCollector::installed() const noexcept {
  return g_active.load(std::memory_order_relaxed) == this;
}

std::uint64_t TraceCollector::nowNs() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

detail::ThreadTrack* TraceCollector::registerThread() {
  const std::lock_guard<std::mutex> lock(mutex_);
  tracks_.push_back(std::make_unique<detail::ThreadTrack>());
  tracks_.back()->osThreadId = osThreadId();
  return tracks_.back().get();
}

void TraceCollector::instant(const char* name, const char* category,
                             std::uint64_t id) {
  if (!installed()) {
    return;
  }
  detail::ThreadTrack* track = detail::trackFor(this);
  track->push({name, category, nowNs(), id, 'i'});
}

std::vector<const detail::ThreadTrack*> TraceCollector::tracks() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const detail::ThreadTrack*> out;
  out.reserve(tracks_.size());
  for (const auto& t : tracks_) {
    out.push_back(t.get());
  }
  return out;
}

std::size_t TraceCollector::eventCount() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& t : tracks_) {
    n += t->events.size();
  }
  return n;
}

std::uint64_t TraceCollector::droppedCount() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const auto& t : tracks_) {
    n += t->dropped;
  }
  return n;
}

void nameCurrentThreadTrack(std::string name) {
  if (TraceCollector* c = detail::activeCollector()) {
    detail::trackFor(c)->name = std::move(name);
  }
}

void ScopedSpan::begin(TraceCollector* c, const char* name,
                       const char* category, std::uint64_t id) noexcept {
  collector_ = c;
  track_ = detail::trackFor(c);
  name_ = name;
  category_ = category;
  id_ = id;
  track_->push({name, category, c->nowNs(), id, 'B'});
}

void ScopedSpan::end() noexcept {
  // The end is recorded even if the collector was stopped mid-span: the
  // buffer is owned by the (still-alive) collector, and an unbalanced
  // track would break the exporter's begin/end pairing guarantee.
  track_->push({name_, category_, collector_->nowNs(), id_, 'E'});
}

}  // namespace ddsim::obs
