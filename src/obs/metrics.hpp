/// \file metrics.hpp
/// \brief Thread-safe metrics primitives: counters, gauges, and fixed-bucket
///        histograms with quantile estimation, plus a named registry.
///
/// All primitives are lock-free on the update path (relaxed atomics) and
/// safe to snapshot concurrently — a snapshot is a coherent-enough view for
/// reporting, not a linearizable one, matching the existing ServiceStats
/// counter semantics.
///
/// Histograms use a fixed geometric bucket layout (factor 1.5 from 1 µs),
/// chosen so that quantile estimates carry at most ~25% relative error
/// over the whole 1 µs .. 10^5 s latency range while update stays one
/// branch-free index computation plus one atomic increment. Quantiles are
/// interpolated linearly inside the selected bucket and clamped to the
/// observed maximum, so p50 <= p95 <= p99 <= max always holds.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ddsim::obs {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, live nodes, ...).
class Gauge {
 public:
  void set(double v) noexcept {
    bits_.store(toBits(v), std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return fromBits(bits_.load(std::memory_order_relaxed));
  }

 private:
  static std::uint64_t toBits(double v) noexcept;
  static double fromBits(std::uint64_t b) noexcept;
  std::atomic<std::uint64_t> bits_{0};
};

/// Exported view of a histogram (see Histogram::snapshot()).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// Non-empty buckets only, as (upper bound, count) pairs in ascending
  /// order. The final bucket's bound may be +inf (overflow bucket).
  std::vector<std::pair<double, std::uint64_t>> buckets;

  /// Flat JSON object: count/sum/max/p50/p95/p99 plus a `buckets` array of
  /// {"le": bound, "count": n} objects.
  [[nodiscard]] std::string toJson() const;
};

/// Element-wise merge of two snapshots taken from histograms with the
/// standard layout (Histogram::kBuckets geometric buckets): bucket counts
/// sum bound-by-bound, count/sum add, max takes the max, and p50/p95/p99
/// are *recomputed* from the merged buckets with the same interpolation
/// Histogram::quantile uses — quantiles of shards never add, so this is
/// how the distributed router aggregates per-shard latency distributions.
[[nodiscard]] HistogramSnapshot mergeHistogramSnapshots(
    const HistogramSnapshot& a, const HistogramSnapshot& b);

/// Fixed-bucket histogram over non-negative values (typically seconds).
class Histogram {
 public:
  /// Geometric layout: bucket i spans (kFirstBound * 1.5^(i-1),
  /// kFirstBound * 1.5^i]; bucket 0 additionally catches everything below,
  /// and a final overflow bucket everything above.
  static constexpr std::size_t kBuckets = 64;
  static constexpr double kFirstBound = 1e-6;
  static constexpr double kGrowth = 1.5;

  void observe(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double max() const noexcept;
  /// Quantile estimate for q in [0, 1]; 0 when the histogram is empty.
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] HistogramSnapshot snapshot() const;

  /// Upper bound of bucket i (the overflow bucket has bound +inf).
  [[nodiscard]] static double bucketBound(std::size_t i) noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets + 1> counts_{};
  std::atomic<std::uint64_t> sumNs_{0};  ///< sum in nanoseconds-of-value
  std::atomic<std::uint64_t> maxBits_{0};
};

/// Named metric registry. Lookup is mutex-guarded (call sites cache the
/// returned reference); the metrics themselves are lock-free. References
/// remain valid for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// One JSON object with every registered metric: counters and gauges as
  /// scalars, histograms via HistogramSnapshot::toJson().
  [[nodiscard]] std::string toJson() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ddsim::obs
