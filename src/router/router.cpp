#include "router/router.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "dd/migration.hpp"  // dd::fnv1a
#include "ir/hash.hpp"
#include "ir/qasm.hpp"
#include "obs/trace.hpp"
#include "serve/result_cache.hpp"

namespace ddsim::router {

// --------------------------------------------------------------- HashRing

HashRing::HashRing(std::size_t virtualNodes)
    : virtualNodes_(std::max<std::size_t>(1, virtualNodes)) {}

namespace {

/// Ring point of (worker, replica): the worker name is FNV-1a hashed once,
/// then each replica index is mixed in with the SplitMix combiner — the
/// same primitives as the cache keys, so points spread uniformly.
std::uint64_t ringPoint(const std::string& worker, std::size_t replica) {
  const std::uint64_t base = dd::fnv1a(
      reinterpret_cast<const std::uint8_t*>(worker.data()), worker.size());
  return ir::hashCombine(base, replica);
}

}  // namespace

void HashRing::add(const std::string& worker) {
  if (!workers_.insert(worker).second) {
    return;  // already present
  }
  for (std::size_t r = 0; r < virtualNodes_; ++r) {
    // On the astronomically rare point collision the first owner keeps it;
    // the arc imbalance of one lost vnode is noise.
    ring_.emplace(ringPoint(worker, r), worker);
  }
}

void HashRing::remove(const std::string& worker) {
  if (workers_.erase(worker) == 0) {
    return;
  }
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == worker) {
      it = ring_.erase(it);
    } else {
      ++it;
    }
  }
}

bool HashRing::contains(const std::string& worker) const {
  return workers_.count(worker) > 0;
}

const std::string& HashRing::lookup(std::uint64_t hash) const {
  if (ring_.empty()) {
    throw RouterError("hash ring is empty (no live workers)");
  }
  auto it = ring_.lower_bound(hash);
  if (it == ring_.end()) {
    it = ring_.begin();  // wrap around
  }
  return it->second;
}

// ----------------------------------------------------------- Router state

/// One conversation with a worker. The write mutex serializes Submit /
/// StatsQuery / Goodbye frames; reads happen only on the reader thread.
struct Router::Channel {
  std::string endpoint;
  net::TcpConnection conn;
  std::mutex writeMutex;
  std::thread reader;
  std::atomic<bool> alive{false};
  bool deathHandled = false;  ///< guarded by Router::mutex_
  /// Latest StatsReport (cleared before each query); Router::mutex_.
  std::optional<serve::ServiceStats> statsReport;

  /// Best-effort frame write; false (and !alive) when the peer is gone.
  bool send(const net::Frame& frame) {
    const std::lock_guard<std::mutex> lock(writeMutex);
    if (!alive.load(std::memory_order_relaxed) || !conn.valid()) {
      return false;
    }
    try {
      net::writeFrame(conn, frame);
      return true;
    } catch (const std::exception&) {
      alive.store(false, std::memory_order_relaxed);
      return false;
    }
  }

  void closeSocket() {
    const std::lock_guard<std::mutex> lock(writeMutex);
    alive.store(false, std::memory_order_relaxed);
    conn.close();
  }
};

/// Routing state of one job, from admission to its terminal RouterResult.
struct Router::Pending {
  RouterJob job;
  std::size_t index = 0;       ///< position in run()'s input/output order
  std::uint64_t routeHash = 0; ///< CacheKey digest — the ring coordinate
  std::uint64_t wireId = 0;    ///< id of the LATEST submission
  std::string worker;          ///< endpoint of the latest submission
  std::size_t submissions = 0;
  bool reroutedAfterDeath = false;
  bool resumeSent = false;
  /// Latest checkpoint blob streamed by any worker that ran this job.
  std::vector<std::uint8_t> checkpoint;
  bool done = false;
  RouterResult result;
};

// --------------------------------------------------------------- Router

Router::Router(RouterConfig config)
    : config_(std::move(config)), ring_(config_.virtualNodes) {}

Router::~Router() { shutdown(); }

void Router::connect() {
  for (const std::string& endpoint : config_.workers) {
    const auto colon = endpoint.rfind(':');
    if (colon == std::string::npos) {
      throw RouterError("worker endpoint '" + endpoint +
                        "' is not host:port");
    }
    const std::string host = endpoint.substr(0, colon);
    const int port = std::stoi(endpoint.substr(colon + 1));
    auto ch = std::make_shared<Channel>();
    ch->endpoint = endpoint;
    try {
      ch->conn = net::TcpConnection::connect(
          host, static_cast<std::uint16_t>(port),
          config_.connectTimeoutSeconds);
    } catch (const net::SocketError&) {
      obs::traceInstant("router.connect-failed", obs::cat::kRouter);
      continue;  // never joins the ring
    }
    // Reads block until the worker speaks (results arrive whenever the
    // simulation finishes); writes get the configured deadline.
    ch->conn.setDeadlines(/*readSeconds=*/0.0,
                          /*writeSeconds=*/config_.ioDeadlineSeconds);
    ch->alive.store(true, std::memory_order_relaxed);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ring_.add(endpoint);
      channels_[endpoint] = ch;
      allChannels_.push_back(ch);
    }
    ch->reader = std::thread([this, ch] { readerLoop(ch); });
    metrics_.gauge("router.shard." + endpoint + ".live").set(1.0);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.empty()) {
    throw RouterError("no worker endpoint is reachable");
  }
}

void Router::readerLoop(const std::shared_ptr<Channel>& ch) {
  for (;;) {
    std::optional<net::Frame> frame;
    try {
      frame = net::readFrame(ch->conn);
    } catch (const std::exception&) {
      break;  // corrupt frame or transport failure: the conversation dies
    }
    if (!frame) {
      break;  // EOF
    }
    switch (frame->type) {
      case net::FrameType::Result: {
        net::ResultPayload payload;
        try {
          payload = net::decodeResult(frame->payload);
        } catch (const net::FrameError&) {
          break;
        }
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = inflight_.find(payload.jobId);
        if (it == inflight_.end() || it->second->done) {
          break;  // stale id from a superseded submission
        }
        const std::shared_ptr<Pending> p = it->second;
        inflight_.erase(it);
        if (payload.status == net::kWireStatusRejected) {
          // Transient admission failure: re-dispatch after the policy
          // backoff (the ring may still point at the same worker — that is
          // correct, its queue simply needs to drain).
          ++counters_.rejectionsReceived;
          obs::traceInstant("router.rejected", obs::cat::kRouter, p->wireId);
          const double backoff =
              config_.retry.backoffFor(std::max<std::size_t>(1,
                                                             p->submissions));
          dispatchQueue_.emplace(
              Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(backoff)),
              p);
          cv_.notify_all();
          break;
        }
        p->done = true;
        p->result.payload = std::move(payload);
        p->result.worker = ch->endpoint;
        p->result.submissions = p->submissions;
        p->result.rerouted = p->reroutedAfterDeath;
        p->result.resumedFromCheckpoint =
            p->resumeSent && p->result.payload.resumed;
        ++counters_.resultsReceived;
        --unresolved_;
        metrics_.counter("router.shard." + ch->endpoint + ".results").add(1);
        obs::traceInstant("router.result", obs::cat::kRouter, p->wireId);
        cv_.notify_all();
        break;
      }
      case net::FrameType::Checkpoint: {
        net::CheckpointPayload payload;
        try {
          payload = net::decodeCheckpoint(frame->payload);
        } catch (const net::FrameError&) {
          break;
        }
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = inflight_.find(payload.jobId);
        if (it != inflight_.end() && !it->second->done) {
          it->second->checkpoint = std::move(payload.blob);
          ++counters_.checkpointsReceived;
          obs::traceInstant("router.checkpoint", obs::cat::kRouter,
                            payload.jobId);
        }
        break;
      }
      case net::FrameType::StatsReport: {
        try {
          serve::ServiceStats stats =
              net::decodeServiceStats(frame->payload);
          const std::lock_guard<std::mutex> lock(mutex_);
          ch->statsReport = std::move(stats);
        } catch (const net::FrameError&) {
          break;
        }
        cv_.notify_all();
        break;
      }
      case net::FrameType::Goodbye:
      case net::FrameType::Hello:
        break;  // handshake / clean end of conversation (EOF follows)
      case net::FrameType::Error: {
        obs::traceInstant("router.worker-error", obs::cat::kRouter);
        break;
      }
      default:
        break;
    }
  }
  onChannelDeath(ch);
}

void Router::onChannelDeath(const std::shared_ptr<Channel>& ch) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    onChannelDeathLocked(ch);
  }
  ch->closeSocket();
  cv_.notify_all();
}

void Router::onChannelDeathLocked(const std::shared_ptr<Channel>& ch) {
  if (ch->deathHandled) {
    return;
  }
  ch->deathHandled = true;
  ch->alive.store(false, std::memory_order_relaxed);
  ring_.remove(ch->endpoint);
  channels_.erase(ch->endpoint);
  metrics_.gauge("router.shard." + ch->endpoint + ".live").set(0.0);
  if (shutdown_) {
    return;  // a goodbye'd conversation ending is not a death
  }
  ++counters_.workerDeaths;
  obs::traceInstant("router.worker-death", obs::cat::kRouter);
  // Everything unresolved on this worker goes back through the ring; the
  // dead arcs now belong to the survivors (minimal-remapping property).
  const auto now = Clock::now();
  for (const auto& [id, p] : inflight_) {
    if (!p->done && p->worker == ch->endpoint) {
      p->reroutedAfterDeath = true;
      ++counters_.rerouted;
      obs::traceInstant("router.reroute", obs::cat::kRouter, p->wireId);
      dispatchQueue_.emplace(now, p);
    }
  }
}

void Router::markLostLocked(const std::shared_ptr<Pending>& job) {
  job->done = true;
  job->result.lost = true;
  job->result.submissions = job->submissions;
  job->result.rerouted = job->reroutedAfterDeath;
  if (job->result.payload.error.empty()) {
    job->result.payload.error =
        ring_.empty() ? "no live workers remain"
                      : "re-route budget exhausted (" +
                            std::to_string(config_.retry.maxAttempts) +
                            " submissions)";
  }
  ++counters_.lostJobs;
  --unresolved_;
  obs::traceInstant("router.lost", obs::cat::kRouter, job->wireId);
}

std::vector<RouterResult> Router::run(const std::vector<RouterJob>& jobs) {
  const obs::ScopedSpan span("router.run", obs::cat::kRouter);
  std::vector<std::shared_ptr<Pending>> pendings;
  pendings.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    auto p = std::make_shared<Pending>();
    p->job = jobs[i];
    p->index = i;
    try {
      // Route by the job's cache identity: the hash the owning shard will
      // use for its result cache, so identical jobs land identically.
      // detectRepetitions never shifts the route — ir::contentHash is
      // invariant under the fold.
      const ir::Circuit circuit = ir::parseQasm(p->job.qasm);
      p->routeHash = serve::CacheKey{ir::contentHash(circuit),
                                     p->job.config.contentHash(),
                                     p->job.seed}
                         .digest();
    } catch (const std::exception& e) {
      // Unparseable QASM fails deterministically on any worker — resolve
      // it router-side instead of wasting a shard on it.
      p->done = true;
      p->result.payload.status = net::wireStatus(serve::JobStatus::Failed);
      p->result.payload.error = e.what();
    }
    pendings.push_back(p);
  }

  std::unique_lock<std::mutex> lock(mutex_);
  counters_.jobsRouted += jobs.size();
  const auto now = Clock::now();
  for (const auto& p : pendings) {
    if (!p->done) {
      ++unresolved_;
      dispatchQueue_.emplace(now, p);
    }
  }

  while (unresolved_ > 0) {
    if (dispatchQueue_.empty()) {
      cv_.wait(lock);
      continue;
    }
    if (dispatchQueue_.begin()->first > Clock::now()) {
      cv_.wait_until(lock, dispatchQueue_.begin()->first);
      continue;
    }
    const std::shared_ptr<Pending> p =
        std::move(dispatchQueue_.begin()->second);
    dispatchQueue_.erase(dispatchQueue_.begin());
    if (p->done) {
      continue;
    }
    if (ring_.empty() || p->submissions >= config_.retry.maxAttempts) {
      markLostLocked(p);
      continue;
    }
    const std::string endpoint = ring_.lookup(p->routeHash);
    const std::shared_ptr<Channel> ch = channels_.at(endpoint);
    p->worker = endpoint;
    ++p->submissions;
    inflight_.erase(p->wireId);
    p->wireId = nextWireId_++;
    inflight_[p->wireId] = p;
    ++counters_.submissionsSent;
    net::SubmitPayload submit;
    submit.jobId = p->wireId;
    submit.label = p->job.label;
    submit.qasm = p->job.qasm;
    submit.config = p->job.config;
    submit.seed = p->job.seed;
    submit.priority = p->job.priority;
    submit.deadlineSeconds = p->job.deadlineSeconds;
    submit.detectRepetitions = p->job.detectRepetitions;
    submit.checkpoint = p->checkpoint;
    if (!submit.checkpoint.empty()) {
      ++counters_.resumesSent;
      p->resumeSent = true;
    }
    obs::traceInstant("router.submit", obs::cat::kRouter, p->wireId);
    metrics_.counter("router.shard." + endpoint + ".submissions").add(1);

    // The actual socket write happens off the router lock — a slow or
    // dying worker must not stall result processing for the others.
    lock.unlock();
    const bool sent = ch->send(
        net::Frame{net::FrameType::Submit, net::encodeSubmit(submit)});
    lock.lock();
    if (!sent) {
      // The death handler re-queues every unresolved job of this worker —
      // including this one (it is in inflight_ with worker == endpoint).
      onChannelDeathLocked(ch);
    }
  }

  std::vector<RouterResult> results;
  results.reserve(pendings.size());
  for (const auto& p : pendings) {
    results.push_back(p->result);
  }
  return results;
}

ClusterStats Router::clusterStats() {
  std::vector<std::shared_ptr<Channel>> live;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [endpoint, ch] : channels_) {
      ch->statsReport.reset();
      live.push_back(ch);
    }
  }
  const net::Frame query{net::FrameType::StatsQuery, {}};
  for (const auto& ch : live) {
    if (!ch->send(query)) {
      onChannelDeath(ch);
    }
  }
  ClusterStats cs;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, std::chrono::seconds(30), [&] {
      return std::all_of(live.begin(), live.end(), [](const auto& ch) {
        return ch->statsReport.has_value() ||
               !ch->alive.load(std::memory_order_relaxed);
      });
    });
    for (const auto& ch : live) {
      if (ch->statsReport) {
        cs.shards.emplace_back(ch->endpoint, *ch->statsReport);
      }
    }
  }
  for (const auto& [endpoint, stats] : cs.shards) {
    serve::mergeStats(cs.aggregate, stats);
  }
  return cs;
}

void Router::shutdown() {
  std::vector<std::shared_ptr<Channel>> live;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      live.clear();
    } else {
      shutdown_ = true;
      for (const auto& [endpoint, ch] : channels_) {
        live.push_back(ch);
      }
    }
  }
  const net::Frame goodbye{net::FrameType::Goodbye,
                           net::encodeGoodbye({"router shutting down"})};
  for (const auto& ch : live) {
    // The worker drains its waiters, replies Goodbye and closes — the
    // reader thread exits on that EOF.
    ch->send(goodbye);
  }
  for (const auto& ch : allChannels_) {
    if (ch->reader.joinable()) {
      ch->reader.join();
    }
  }
  for (const auto& ch : allChannels_) {
    ch->closeSocket();
  }
}

std::size_t Router::liveWorkers() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

RouterCounters Router::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::string ClusterStats::toJson() const {
  std::ostringstream os;
  os << "{\"workers_live\": " << shards.size()
     << ", \"aggregate\": " << aggregate.toJson() << ", \"shards\": [";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    os << (i > 0 ? ", " : "") << "{\"endpoint\": \"" << shards[i].first
       << "\", \"stats\": " << shards[i].second.toJson() << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace ddsim::router
