/// \file router.hpp
/// \brief Front-end router: consistent-hash sharding of simulation jobs
///        over ddsim_serve workers speaking the frame protocol.
///
/// Why consistent hashing (DESIGN.md, "Distributed serving"): the paper's
/// strategies pay off most when hot DD blocks and finished results are
/// *reused*, and every reuse structure in this codebase — result cache,
/// block cache, spill journal — is per-process. Routing a job by its cache
/// identity, CacheKey{ir::contentHash(circuit), config.contentHash(),
/// seed}.digest(), therefore sends identical work to the same worker every
/// time: duplicates coalesce or hit that shard's caches instead of
/// re-simulating on another one, and a worker join/leave only remaps the
/// ring arcs it owns (virtual nodes keep the arcs balanced).
///
/// Failure protocol: a worker that dies mid-conversation (EOF or socket
/// error, no Goodbye frame) is removed from the ring; its unresolved jobs
/// are re-routed to the surviving owners with a bounded re-route budget
/// (RouterConfig::retry, riding the serve-layer RetryPolicy shape), each
/// resubmission carrying the latest Checkpoint blob that worker streamed —
/// the new shard resumes mid-circuit instead of restarting. A Result frame
/// with the wire-only Rejected status (admission queue full) is retried
/// after the policy's backoff. Only an exhausted budget or an empty ring
/// marks a job lost.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "serve/service.hpp"

namespace ddsim::router {

class RouterError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Consistent-hash ring with virtual nodes. Each worker owns
/// `virtualNodes` points on a 64-bit ring; a hash maps to the worker of
/// the first point at or after it (wrapping). More virtual nodes = smaller
/// variance between the arc shares of the workers.
class HashRing {
 public:
  explicit HashRing(std::size_t virtualNodes = 64);

  void add(const std::string& worker);
  void remove(const std::string& worker);
  [[nodiscard]] bool contains(const std::string& worker) const;
  /// Distinct workers (not virtual nodes).
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }
  [[nodiscard]] bool empty() const noexcept { return workers_.empty(); }

  /// Owner of \p hash. Throws RouterError on an empty ring.
  [[nodiscard]] const std::string& lookup(std::uint64_t hash) const;

 private:
  std::size_t virtualNodes_;
  std::map<std::uint64_t, std::string> ring_;  ///< point -> worker
  std::set<std::string> workers_;
};

/// One job as the router sees it: self-contained QASM text plus run
/// parameters (the distributed twin of serve::JobSpec — no shared
/// filesystem, no parsed circuit).
struct RouterJob {
  std::string label;
  std::string qasm;
  sim::StrategyConfig config;
  std::uint64_t seed = 0;
  serve::JobPriority priority = serve::JobPriority::Normal;
  double deadlineSeconds = 0.0;
  bool detectRepetitions = false;
};

/// Terminal outcome of one routed job.
struct RouterResult {
  net::ResultPayload payload;
  std::string worker;          ///< endpoint that produced the final answer
  std::size_t submissions = 1; ///< wire submissions (1 = no re-route)
  bool rerouted = false;       ///< at least one re-route happened
  bool resumedFromCheckpoint = false;  ///< a re-route carried a checkpoint
  bool lost = false;  ///< budget/ring exhausted before a terminal Result
};

struct RouterConfig {
  /// Worker endpoints as "host:port" (host must be a dotted quad;
  /// localhost clusters use 127.0.0.1).
  std::vector<std::string> workers;
  std::size_t virtualNodes = 64;
  /// Re-route/rejection budget per job: maxAttempts total wire
  /// submissions, backoff applied before retrying a rejection.
  serve::RetryPolicy retry{.maxAttempts = 3};
  double connectTimeoutSeconds = 5.0;
  /// Per-operation socket deadlines once connected.
  double ioDeadlineSeconds = 30.0;
};

/// Router-side counters (monotonic since construction).
struct RouterCounters {
  std::uint64_t jobsRouted = 0;           ///< jobs given to run()
  std::uint64_t submissionsSent = 0;      ///< Submit frames written
  std::uint64_t resultsReceived = 0;      ///< terminal Result frames
  std::uint64_t rejectionsReceived = 0;   ///< Rejected wire statuses
  std::uint64_t rerouted = 0;             ///< re-submissions after a death
  std::uint64_t workerDeaths = 0;
  std::uint64_t checkpointsReceived = 0;
  std::uint64_t resumesSent = 0;  ///< re-submissions carrying a checkpoint
  std::uint64_t lostJobs = 0;
};

/// Per-shard stats plus their cluster-wide merge (serve::mergeStats).
struct ClusterStats {
  std::vector<std::pair<std::string, serve::ServiceStats>> shards;
  serve::ServiceStats aggregate;

  /// {"workers_live": n, "aggregate": {...}, "shards": [{"endpoint": ...,
  ///  "stats": {...}}, ...]} — aggregate/stats are ServiceStats::toJson().
  [[nodiscard]] std::string toJson() const;
};

class Router {
 public:
  explicit Router(RouterConfig config);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Connect to every configured worker. Unreachable workers are skipped
  /// (they simply never join the ring); throws RouterError when NO worker
  /// is reachable.
  void connect();

  /// Route every job to a terminal outcome (result order matches job
  /// order). Blocking; re-routes around worker deaths as they happen.
  std::vector<RouterResult> run(const std::vector<RouterJob>& jobs);

  /// Query every live worker for its ServiceStats and merge them.
  [[nodiscard]] ClusterStats clusterStats();

  /// Send Goodbye to every live worker and close the conversations.
  /// Idempotent; also run by the destructor.
  void shutdown();

  [[nodiscard]] std::size_t liveWorkers() const;
  [[nodiscard]] RouterCounters counters() const;
  /// Router-side gauges/counters registry (per-shard assigned/completed
  /// gauges, named "router.shard.<endpoint>....").
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }

 private:
  struct Channel;
  struct Pending;
  using Clock = std::chrono::steady_clock;

  void readerLoop(const std::shared_ptr<Channel>& ch);
  /// Mark a channel dead, drop it from the ring, queue its unresolved
  /// jobs for re-routing. Safe to call repeatedly.
  void onChannelDeath(const std::shared_ptr<Channel>& ch);
  void onChannelDeathLocked(const std::shared_ptr<Channel>& ch);
  /// Resolve a job as lost (budget or ring exhausted). Caller holds mutex_.
  void markLostLocked(const std::shared_ptr<Pending>& job);

  RouterConfig config_;
  obs::MetricsRegistry metrics_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  HashRing ring_;
  /// Live channels by endpoint (dead ones are erased; allChannels_ keeps
  /// them alive for thread joining).
  std::map<std::string, std::shared_ptr<Channel>> channels_;
  std::vector<std::shared_ptr<Channel>> allChannels_;
  std::map<std::uint64_t, std::shared_ptr<Pending>> inflight_;
  /// (Re)dispatch queue keyed by due time — rejections re-enter after the
  /// policy backoff, death re-routes immediately. Drained by run().
  std::multimap<Clock::time_point, std::shared_ptr<Pending>> dispatchQueue_;
  std::uint64_t nextWireId_ = 1;
  std::size_t unresolved_ = 0;
  bool shutdown_ = false;
  RouterCounters counters_;
};

}  // namespace ddsim::router
