/// \file noisy_simulation.cpp
/// \brief Density-matrix simulation with noise channels — the all-MxM
///        workload: every gate is U rho U^dagger and every channel a Kraus
///        sum, so the whole run consists of the matrix-matrix products the
///        paper shows to be DD-friendly.
///
/// Usage: noisy_simulation [num_qubits] [depolarizing_p]

#include <cstdio>
#include <cstdlib>

#include "dd/pauli.hpp"
#include "sim/density.hpp"
#include "sim/stochastic.hpp"

int main(int argc, char** argv) {
  using namespace ddsim;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  const double p = argc > 2 ? std::strtod(argv[2], nullptr) : 0.01;

  // GHZ preparation — the canonical coherence benchmark.
  ir::Circuit circuit(n);
  circuit.h(0);
  for (std::size_t q = 1; q < n; ++q) {
    circuit.cx(static_cast<ir::Qubit>(q - 1), static_cast<ir::Qubit>(q));
  }

  std::printf("GHZ-%zu under depolarizing noise (p = %g per touched qubit per "
              "gate)\n\n",
              n, p);

  const std::string allZ(n, 'Z');
  const std::string allX(n, 'X');

  for (const double prob : {0.0, p, 5 * p}) {
    sim::NoiseModel noise;
    if (prob > 0) {
      noise.channels.push_back(sim::NoiseChannel::depolarizing(prob));
    }
    sim::DensityMatrixSimulator simulator(circuit, noise);
    const auto result = simulator.run();

    const double purity = simulator.purity(result.rho);
    const double pAll0 = simulator.basisProbability(result.rho, 0);
    const double zz = simulator
                          .expectation(result.rho, dd::makePauliStringDD(
                                                       simulator.package(), allZ))
                          .r;
    const double xx = simulator
                          .expectation(result.rho, dd::makePauliStringDD(
                                                       simulator.package(), allX))
                          .r;
    std::printf("p=%-6g time %6.3f s  rho DD %4zu nodes  purity %.4f  "
                "P(0..0) %.4f  <Z..Z> %+.4f  <X..X> %+.4f\n",
                prob, result.wallSeconds, result.finalNodes, purity, pAll0, zz,
                xx);
  }

  std::printf("\nTrace is preserved, purity and the coherence witness <X..X> "
              "decay with noise, while the classical correlator <Z..Z> is "
              "more robust for even n.\n");

  // Cross-check: the Monte-Carlo trajectory engine converges to the exact
  // density-matrix marginals.
  sim::NoiseModel noise{{sim::NoiseChannel::depolarizing(p)}};
  sim::DensityMatrixSimulator exact(circuit, noise);
  const auto exactResult = exact.run();
  const std::size_t trajectories = 500;
  const auto sampled = sim::simulateStochastic(circuit, noise, trajectories, 7);
  std::printf("\ndensity vs. %zu stochastic trajectories (%.3f s), "
              "P(qubit = 1):\n",
              trajectories, sampled.wallSeconds);
  for (std::size_t q = 0; q < n; ++q) {
    std::printf("  qubit %zu: exact %.4f  sampled %.4f\n", q,
                exact.probabilityOfOne(exactResult.rho,
                                       static_cast<ir::Qubit>(q)),
                sampled.meanProbabilityOfOne[q]);
  }
  return 0;
}
