/// \file equivalence_check.cpp
/// \brief DD-based equivalence checking of two circuits — a direct
///        application of matrix-matrix multiplication on DDs (the same
///        primitive the paper's combination strategies are built on).
///
/// Usage: equivalence_check <a.qasm|benchmark-name> <b.qasm|benchmark-name>
///
/// Exit code 0 when equivalent (possibly up to global phase), 1 otherwise.

#include <cstdio>
#include <optional>
#include <string>

#include "algo/benchmarks.hpp"
#include "ir/qasm.hpp"
#include "ir/transforms.hpp"
#include "sim/equivalence.hpp"
#include "sim/stats.hpp"

namespace {

std::optional<ddsim::ir::Circuit> load(const std::string& target) {
  if (target.size() > 5 && target.substr(target.size() - 5) == ".qasm") {
    try {
      return ddsim::ir::parseQasmFile(target);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error loading %s: %s\n", target.c_str(), e.what());
      return std::nullopt;
    }
  }
  auto circuit = ddsim::algo::makeBenchmark(target);
  if (!circuit) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", target.c_str());
  }
  return circuit;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ddsim;

  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: equivalence_check <a.qasm|name> <b.qasm|name>\n");
    return 2;
  }
  auto a = load(argv[1]);
  auto b = load(argv[2]);
  if (!a || !b) {
    return 2;
  }

  std::printf("A: %zu qubits, %zu gates (depth %zu)\n", a->numQubits(),
              a->flatGateCount(), ir::circuitDepth(*a));
  std::printf("B: %zu qubits, %zu gates (depth %zu)\n", b->numQubits(),
              b->flatGateCount(), ir::circuitDepth(*b));

  const sim::Timer timer;
  const sim::Equivalence verdict = sim::checkEquivalence(*a, *b);
  const double seconds = timer.seconds();

  switch (verdict) {
    case sim::Equivalence::Equivalent:
      std::printf("EQUIVALENT (%.3f s)\n", seconds);
      return 0;
    case sim::Equivalence::EquivalentUpToPhase:
      std::printf("EQUIVALENT up to global phase (%.3f s)\n", seconds);
      return 0;
    case sim::Equivalence::NotEquivalent:
      std::printf("NOT equivalent (%.3f s)\n", seconds);
      return 1;
  }
  return 2;
}
