/// \file grover_search.cpp
/// \brief Grover database search end-to-end, comparing the sequential
///        schedule against the paper's *DD-repeating* strategy on the
///        repeated Grover iteration.
///
/// Usage: grover_search [num_qubits] [marked_element]

#include <cstdio>
#include <cstdlib>

#include "algo/grover.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace ddsim;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 12;
  const std::uint64_t marked =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : (0xDEADBEEFULL & ((1ULL << n) - 1));

  std::printf("Grover search: %zu qubits, database size %llu, marked element "
              "%llu, %zu iterations\n\n",
              n, static_cast<unsigned long long>(1ULL << n),
              static_cast<unsigned long long>(marked),
              algo::groverIterations(n));

  const ir::Circuit circuit = algo::makeGroverCircuit(n, marked);

  sim::StrategyConfig repeating = sim::StrategyConfig::sequential();
  repeating.reuseRepeatedBlocks = true;

  struct Run {
    const char* label;
    sim::StrategyConfig config;
  };
  const Run runs[] = {
      {"sequential (Eq. 1)", sim::StrategyConfig::sequential()},
      {"k-operations, k=8", sim::StrategyConfig::kOperations(8)},
      {"DD-repeating", repeating},
  };

  double baseline = 0;
  for (const auto& run : runs) {
    sim::CircuitSimulator simulator(circuit, run.config);
    const auto result = simulator.run();
    const double p =
        simulator.package().getAmplitude(result.finalState, marked).mag2();
    if (baseline == 0) {
      baseline = result.stats.wallSeconds;
    }
    std::printf("%-22s  time %7.3f s  (speed-up %5.2fx)  MxV %6llu  MxM %6llu"
                "  P(marked) = %.4f\n",
                run.label, result.stats.wallSeconds,
                baseline / result.stats.wallSeconds,
                static_cast<unsigned long long>(result.stats.mxvCount),
                static_cast<unsigned long long>(result.stats.mxmCount), p);
  }
  return 0;
}
