/// \file quickstart.cpp
/// \brief Minimal tour of the public API: build a circuit, simulate it with
///        different operation-combination strategies, inspect amplitudes,
///        sample measurements, and export the state DD as Graphviz.
///
/// Usage: quickstart [num_qubits]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <random>

#include "dd/dot_export.hpp"
#include "ir/circuit.hpp"
#include "ir/qasm.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace ddsim;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;

  // 1. Build a GHZ circuit through the emitter API.
  ir::Circuit circuit(n, n, "ghz");
  circuit.h(0);
  for (std::size_t q = 1; q < n; ++q) {
    circuit.cx(0, static_cast<ir::Qubit>(q));
  }

  std::printf("Circuit:\n%s\n", circuit.toString().c_str());
  std::printf("As OpenQASM:\n%s\n", ir::toQasm(circuit).c_str());

  // 2. Simulate — sequentially (Eq. 1 of the paper) and with operation
  //    combination (k-operations, Section IV-A). Both give the same state.
  for (const auto config : {sim::StrategyConfig::sequential(),
                            sim::StrategyConfig::kOperations(4)}) {
    sim::CircuitSimulator simulator(circuit, config);
    const auto result = simulator.run();
    auto& pkg = simulator.package();

    std::printf("strategy %-20s: %s\n", config.toString().c_str(),
                result.stats.toString().c_str());

    // 3. Inspect amplitudes: GHZ has weight only on |0..0> and |1..1>.
    const std::uint64_t allOnes = (1ULL << n) - 1;
    std::printf("  amplitude(|0...0>) = %s\n",
                pkg.getAmplitude(result.finalState, 0).toString().c_str());
    std::printf("  amplitude(|1...1>) = %s\n",
                pkg.getAmplitude(result.finalState, allOnes).toString().c_str());
    std::printf("  state DD size      = %zu nodes (vs. 2^%zu = %llu dense "
                "amplitudes)\n",
                pkg.size(result.finalState), n,
                static_cast<unsigned long long>(1ULL << n));

    // 4. Sample a few measurement shots.
    std::mt19937_64 rng(7);
    dd::VEdge state = result.finalState;
    std::printf("  shots:");
    for (int shot = 0; shot < 8; ++shot) {
      std::printf(" %llu",
                  static_cast<unsigned long long>(pkg.measureAll(state, rng, false)));
    }
    std::printf("\n");

    // 5. Export the final state DD as Graphviz dot (first strategy only).
    if (config.schedule == sim::Schedule::Sequential) {
      std::printf("\nGraphviz dot of the final state DD:\n%s\n",
                  dd::toDot(result.finalState).c_str());
    }
  }
  return 0;
}
