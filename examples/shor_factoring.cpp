/// \file shor_factoring.cpp
/// \brief Factor a number with Shor's algorithm, demonstrating the paper's
///        *DD-construct* strategy: the modular-exponentiation oracle is
///        turned into a permutation DD directly (n+1 qubits) instead of
///        simulating Beauregard's full 2n+3-qubit gate-level circuit.
///
/// Usage: shor_factoring [N] [a] [--gate-level]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "algo/numbertheory.hpp"
#include "algo/shor.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace ddsim;

  const std::uint64_t N = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 15;
  const std::uint64_t a = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;
  const bool gateLevel = argc > 3 && std::strcmp(argv[3], "--gate-level") == 0;

  if (algo::gcd(a, N) != 1) {
    std::printf("gcd(%llu, %llu) = %llu > 1 — classical shortcut, no quantum "
                "part needed.\n",
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(N),
                static_cast<unsigned long long>(algo::gcd(a, N)));
    return 0;
  }

  const std::size_t m = 2 * algo::bitLength(N);
  const ir::Circuit circuit = gateLevel ? algo::makeShorBeauregardCircuit(N, a)
                                        : algo::makeShorOracleCircuit(N, a);

  std::printf("Shor order finding for a=%llu mod N=%llu\n",
              static_cast<unsigned long long>(a),
              static_cast<unsigned long long>(N));
  std::printf("  variant: %s (%zu qubits, %zu elementary ops, %zu phase bits)\n\n",
              gateLevel ? "Beauregard gate-level (2n+3 qubits)"
                        : "DD-construct oracle (n+1 qubits)",
              circuit.numQubits(), circuit.flatGateCount(), m);

  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const auto result = sim::simulate(circuit, {}, seed);
    const std::uint64_t measured =
        algo::shorMeasuredValue(result.classicalBits, m);
    std::printf("  attempt %2llu: measured %6llu/2^%zu  (%7.3f s)",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(measured), m,
                result.stats.wallSeconds);

    const auto order =
        algo::orderFromPhase(measured, static_cast<std::uint32_t>(m), a, N);
    if (!order) {
      std::printf("  -> no usable order, retrying\n");
      continue;
    }
    std::printf("  -> order r = %llu", static_cast<unsigned long long>(*order));
    if (const auto factors = algo::factorsFromOrder(N, a, *order)) {
      std::printf("  -> %llu = %llu x %llu\n",
                  static_cast<unsigned long long>(N),
                  static_cast<unsigned long long>(factors->first),
                  static_cast<unsigned long long>(factors->second));
      return 0;
    }
    std::printf("  -> order gives no non-trivial factor, retrying\n");
  }
  std::printf("no factors found in 16 attempts (try another a)\n");
  return 1;
}
