/// \file run_benchmark.cpp
/// \brief Command-line front-end: simulate a named benchmark or an OpenQASM
///        file under any scheduling strategy, print statistics, optionally
///        sample shots or dump a per-step size trace as CSV.
///
/// Usage:
///   run_benchmark <benchmark-name | file.qasm>
///                 [--strategy seq|k=<n>|maxsize=<n>|adaptive[=<ratio>]]
///                 [--dd-repeating] [--detect-repetitions] [--optimize]
///                 [--pipeline [on|off]] [--pipeline-depth <n>]
///                 [--threads <n>]
///                 [--shots <n>]
///                 [--trace <file.csv>] [--trace-out <trace.json>]
///                 [--seed <n>]
///                 [--approximate <fidelity>] [--approx-sim <fidelity>]
///
/// --trace writes the per-step DD-size CSV; --trace-out records the span
/// timeline of the whole run as Chrome trace-event JSON (open in Perfetto
/// or chrome://tracing).
///
/// Benchmark names follow the paper: grover_16, shor_15_7, shordd_15_7,
/// supremacy_4x4_12, qft_20, ...

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "algo/benchmarks.hpp"
#include "dd/approximation.hpp"
#include "ir/optimize.hpp"
#include "ir/qasm.hpp"
#include "ir/transforms.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"
#include "serve/manifest.hpp"
#include "sim/simulator.hpp"

namespace {

void usage() {
  std::printf(
      "usage: run_benchmark <name|file.qasm> [--strategy "
      "seq|k=<n>|maxsize=<n>|adaptive[=<r>]] [--dd-repeating] "
      "[--detect-repetitions] [--pipeline [on|off]] [--pipeline-depth <n>] "
      "[--threads <n>] [--shots <n>] [--trace <csv>] "
      "[--trace-out <json>] [--seed <n>]\n\n"
      "example benchmark names:\n");
  for (const auto& name : ddsim::algo::benchmarkExamples()) {
    std::printf("  %s\n", name.c_str());
  }
}

// Strategy specs share the manifest grammar of the serving layer.
std::optional<ddsim::sim::StrategyConfig> parseStrategy(const std::string& s) {
  return ddsim::serve::parseStrategySpec(s);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ddsim;

  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string target = argv[1];

  sim::StrategyConfig config = sim::StrategyConfig::sequential();
  std::size_t shots = 0;
  std::string traceFile;
  std::string traceOutFile;
  std::uint64_t seed = 0;
  bool detectReps = false;
  bool runOptimizer = false;
  double approximateTarget = 0.0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strategy" && i + 1 < argc) {
      const auto parsed = parseStrategy(argv[++i]);
      if (!parsed) {
        std::fprintf(stderr, "unknown strategy '%s'\n", argv[i]);
        return 1;
      }
      const bool reuse = config.reuseRepeatedBlocks;
      const bool pipeline = config.pipeline;
      const std::size_t pipelineDepth = config.pipelineDepth;
      const std::size_t threads = config.threads;
      config = *parsed;
      config.reuseRepeatedBlocks = reuse;
      config.pipeline = pipeline;
      config.pipelineDepth = pipelineDepth;
      config.threads = threads;
    } else if (arg == "--dd-repeating") {
      config.reuseRepeatedBlocks = true;
    } else if (arg == "--pipeline") {
      // Optional on|off operand; bare --pipeline enables.
      config.pipeline = true;
      if (i + 1 < argc && (std::strcmp(argv[i + 1], "on") == 0 ||
                           std::strcmp(argv[i + 1], "off") == 0)) {
        config.pipeline = std::strcmp(argv[++i], "on") == 0;
      }
    } else if (arg == "--pipeline-depth" && i + 1 < argc) {
      config.pipelineDepth = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--threads" && i + 1 < argc) {
      config.threads = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--detect-repetitions") {
      detectReps = true;
    } else if (arg == "--optimize") {
      runOptimizer = true;
    } else if (arg == "--shots" && i + 1 < argc) {
      shots = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--trace" && i + 1 < argc) {
      traceFile = argv[++i];
      config.collectTrace = true;
    } else if (arg == "--trace-out" && i + 1 < argc) {
      traceOutFile = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--approximate" && i + 1 < argc) {
      approximateTarget = std::strtod(argv[++i], nullptr);
    } else if (arg == "--approx-sim" && i + 1 < argc) {
      config.approximateFidelity = std::strtod(argv[++i], nullptr);
    } else {
      usage();
      return 1;
    }
  }

  std::optional<ir::Circuit> circuit;
  if (target.size() > 5 && target.substr(target.size() - 5) == ".qasm") {
    try {
      circuit = ir::parseQasmFile(target);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  } else {
    circuit = algo::makeBenchmark(target);
    if (!circuit) {
      std::fprintf(stderr, "unknown benchmark '%s'\n\n", target.c_str());
      usage();
      return 1;
    }
  }

  if (runOptimizer) {
    const std::size_t before = circuit->flatGateCount();
    ir::OptimizeStats ostats;
    circuit = ir::optimize(*circuit, {}, &ostats);
    std::printf(
        "optimizer: %zu -> %zu gates (%zu identities, %zu cancelled pairs, "
        "%zu fused)\n",
        before, circuit->flatGateCount(), ostats.removedIdentities,
        ostats.cancelledPairs, ostats.fusedGates);
  }
  if (detectReps) {
    const std::size_t before = circuit->numOps();
    circuit = ir::detectRepetitions(*circuit);
    std::printf("repetition detection: %zu -> %zu top-level operations\n",
                before, circuit->numOps());
  }

  std::printf("benchmark  : %s\n", circuit->name().empty() ? target.c_str()
                                                           : circuit->name().c_str());
  std::printf("qubits     : %zu\n", circuit->numQubits());
  std::printf("gates      : %zu elementary (in %zu operations)\n",
              circuit->flatGateCount(), circuit->numOps());
  std::printf("strategy   : %s\n\n", config.toString().c_str());

  obs::TraceCollector collector;
  if (!traceOutFile.empty()) {
    collector.install();
  }

  sim::CircuitSimulator simulator(*circuit, config, seed);
  const auto result = simulator.run();

  if (!traceOutFile.empty()) {
    collector.stop();
    std::ofstream out(traceOutFile);
    obs::writeChromeTrace(out, collector);
    std::printf("span trace with %zu events written to %s\n",
                collector.eventCount(), traceOutFile.c_str());
  }

  std::printf("time       : %.3f s\n", result.stats.wallSeconds);
  std::printf("MxV / MxM  : %llu / %llu\n",
              static_cast<unsigned long long>(result.stats.mxvCount),
              static_cast<unsigned long long>(result.stats.mxmCount));
  std::printf("state DD   : peak %zu nodes, final %zu nodes\n",
              result.stats.peakStateNodes, result.stats.finalStateNodes);
  if (result.stats.approxRounds > 0) {
    std::printf("approx     : %llu rounds, cumulative fidelity >= %.6f\n",
                static_cast<unsigned long long>(result.stats.approxRounds),
                result.stats.approxFidelity);
  }
  std::printf("matrix DD  : peak %zu nodes\n", result.stats.peakMatrixNodes);
  if (result.stats.pipelinedBlocks > 0 || result.stats.pipelineBowOuts > 0) {
    std::printf(
        "pipeline   : %llu blocks, %llu stalls, %llu bow-outs, "
        "%llu serial-fallback ops, %llu migrated nodes, %.3f s builder time\n",
        static_cast<unsigned long long>(result.stats.pipelinedBlocks),
        static_cast<unsigned long long>(result.stats.pipelineStalls),
        static_cast<unsigned long long>(result.stats.pipelineBowOuts),
        static_cast<unsigned long long>(result.stats.serialFallbackOps),
        static_cast<unsigned long long>(result.stats.migratedNodes),
        result.stats.builderBuildSeconds);
  }
  const dd::CacheStats cache = simulator.package().cacheStats();
  std::printf("cache hits : MxV %.1f%%  MxM %.1f%%  add %.1f%%  unique %.1f%%"
              "  complex %.1f%%\n",
              100 * dd::CacheStats::rate(cache.mulMVHits, cache.mulMVMisses),
              100 * dd::CacheStats::rate(cache.mulMMHits, cache.mulMMMisses),
              100 * dd::CacheStats::rate(cache.addHits, cache.addMisses),
              100 * dd::CacheStats::rate(cache.uniqueTableHits,
                                         cache.uniqueTableMisses),
              100 * dd::CacheStats::rate(cache.complexTableHits,
                                         cache.complexTableMisses));
  std::printf("DD package : %llu recursive mults, %llu adds, %llu GCs\n",
              static_cast<unsigned long long>(result.stats.dd.recursiveMulVCalls +
                                              result.stats.dd.recursiveMulMCalls),
              static_cast<unsigned long long>(result.stats.dd.recursiveAddCalls),
              static_cast<unsigned long long>(result.stats.dd.garbageCollections));

  if (circuit->numClbits() > 0) {
    std::printf("classical  : ");
    for (std::size_t i = circuit->numClbits(); i-- > 0;) {
      std::printf("%d", result.classicalBits[i] ? 1 : 0);
    }
    std::printf("\n");
  }

  if (approximateTarget > 0.0) {
    const auto approx = dd::approximate(simulator.package(), result.finalState,
                                        approximateTarget);
    std::printf(
        "\napproximation (target fidelity %.4f): %zu -> %zu nodes, "
        "achieved fidelity %.6f, %zu edges removed\n",
        approximateTarget, approx.nodesBefore, approx.nodesAfter,
        approx.fidelity, approx.removedEdges);
  }

  if (shots > 0) {
    std::mt19937_64 rng(seed + 1);
    const auto histogram =
        simulator.package().sampleCounts(result.finalState, shots, rng);
    std::printf("\ntop outcomes of %zu shots:\n", shots);
    std::size_t printed = 0;
    // histogram is ordered by outcome; show up to 10 entries sorted by count
    std::vector<std::pair<std::size_t, std::uint64_t>> byCount;
    for (const auto& [outcome, count] : histogram) {
      byCount.emplace_back(count, outcome);
    }
    std::sort(byCount.rbegin(), byCount.rend());
    for (const auto& [count, outcome] : byCount) {
      if (++printed > 10) {
        break;
      }
      std::printf("  %8llu  x%zu\n", static_cast<unsigned long long>(outcome),
                  count);
    }
  }

  if (!traceFile.empty()) {
    std::ofstream out(traceFile);
    result.trace.writeCsv(out);
    std::printf("\ntrace with %zu steps written to %s\n",
                result.trace.steps.size(), traceFile.c_str());
  }
  return 0;
}
