/// \file supremacy_sampling.cpp
/// \brief Simulate Google-supremacy-style random circuits and sample
///        bitstrings, showing how the state DD grows with depth and how the
///        general combining strategies pay off on these hard instances.
///
/// Usage: supremacy_sampling [rows] [cols] [depth] [seed]

#include <cstdio>
#include <cstdlib>
#include <random>

#include "algo/supremacy.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace ddsim;

  algo::SupremacyOptions options;
  options.rows = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  options.cols = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
  options.depth = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 12;
  options.seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;

  const ir::Circuit circuit = algo::makeSupremacyCircuit(options);
  std::printf("%s: %zux%zu grid, depth %zu, %zu gates\n\n",
              circuit.name().c_str(), options.rows, options.cols, options.depth,
              circuit.flatGateCount());

  struct Run {
    const char* label;
    sim::StrategyConfig config;
  };
  const Run runs[] = {
      {"sequential", sim::StrategyConfig::sequential()},
      {"k-operations k=4", sim::StrategyConfig::kOperations(4)},
      {"max-size s=1024", sim::StrategyConfig::maxSizeStrategy(1024)},
  };

  for (const auto& run : runs) {
    sim::CircuitSimulator simulator(circuit, run.config);
    const auto result = simulator.run();
    std::printf("%-18s time %7.3f s  MxV %5llu  MxM %5llu  peak state nodes "
                "%6zu  final %6zu\n",
                run.label, result.stats.wallSeconds,
                static_cast<unsigned long long>(result.stats.mxvCount),
                static_cast<unsigned long long>(result.stats.mxmCount),
                result.stats.peakStateNodes, result.stats.finalStateNodes);

    if (&run == &runs[0]) {
      // Sample bitstrings from the final state (the experiment the
      // supremacy proposal performs on hardware).
      std::mt19937_64 rng(options.seed);
      dd::VEdge state = result.finalState;
      std::printf("  samples:");
      for (int shot = 0; shot < 6; ++shot) {
        std::printf(" %0*llx",
                    static_cast<int>((circuit.numQubits() + 3) / 4),
                    static_cast<unsigned long long>(
                        simulator.package().measureAll(state, rng, false)));
      }
      std::printf("\n");
    }
  }
  return 0;
}
