/// \file ddsim_serve.cpp
/// \brief Batch-simulation driver over the serve/ subsystem: read a job
///        manifest (QASM paths + per-job strategy/budget options), run all
///        jobs through a SimulationService worker pool, write per-job JSON
///        results (including partial progress on failures) plus aggregated
///        service statistics.
///
/// Usage:
///   ddsim_serve <manifest.txt> [--workers <n>] [--queue <n>] [--cache <n>]
///               [--block-cache <n>] [--pipeline on|off] [--threads <n>]
///               [--cache-dir <dir>] [--retries <n>] [--retry-backoff <s>]
///               [--checkpoint-interval <ops>]
///               [--out <results.json>] [--stats <stats.json>]
///               [--trace-out <trace.json>] [--stats-dump <seconds>]
///   ddsim_serve --listen <port> [service options as above]
///
/// Worker mode (--listen): instead of reading a manifest, bind
/// 127.0.0.1:<port> and serve framed job submissions from a ddsim_router
/// front-end (see net/server.hpp for the conversation protocol and
/// DESIGN.md "Distributed serving" for the cluster picture). The manifest
/// argument is not used; SIGINT/SIGTERM drains in-flight jobs, streams
/// their Results, says Goodbye on every connection and exits. All service
/// options (--workers, --cache-dir, --retries, ...) apply to the worker's
/// embedded SimulationService exactly as in batch mode.
///
/// Durability: --cache-dir persists the result cache across restarts (a
/// restarted run answers previously completed jobs as cached, without
/// re-simulating — see serve/persistence.hpp). --retries enables the
/// transient-failure retry policy (total attempts per job), --retry-backoff
/// sets the base exponential backoff, and --checkpoint-interval makes jobs
/// resumable: a retried attempt continues from the last per-job checkpoint
/// instead of restarting.
///
/// SIGINT/SIGTERM drain gracefully: admission stops, running jobs finish,
/// the cache snapshot and the final results/stats JSON are still written.
///
/// --block-cache enables the shared prebuilt-block cache (exported matrix
/// DDs of DD-repeating blocks, shared across workers via cross-package
/// migration). --pipeline overrides the manifest's per-job pipeline flag
/// for every job; --threads likewise overrides the per-job kernel worker
/// count (careful with oversubscription: workers x threads cores in play).
///
/// --trace-out records every package/simulator/serve span of the run and
/// writes Chrome trace-event JSON (open in Perfetto or chrome://tracing).
/// --stats-dump prints the aggregated ServiceStats JSON to stderr every
/// <seconds> while jobs are in flight.
///
/// Manifest format: see serve/manifest.hpp (one job per line, `#` comments).
/// QASM paths are resolved relative to the manifest's directory. A job line
/// with `repeat=n` fans out into n jobs seeded with sim::deriveSeed(seed, i)
/// — the documented derivation rule, so recorded (seed, i) pairs reproduce
/// bit-identical outcomes anywhere.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ir/qasm.hpp"
#include "ir/transforms.hpp"
#include "net/server.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"
#include "serve/manifest.hpp"
#include "serve/service.hpp"
#include "sim/simulator.hpp"

namespace {

/// Last graceful-drain signal received (0 = none). Written by the handler,
/// polled by the submission and wait loops.
std::atomic<int> gSignal{0};

void onSignal(int sig) { gSignal.store(sig, std::memory_order_relaxed); }

void usage() {
  std::printf(
      "usage: ddsim_serve <manifest.txt> [--workers <n>] [--queue <n>] "
      "[--cache <n>] [--block-cache <n>] [--pipeline on|off] "
      "[--threads <n>] "
      "[--cache-dir <dir>] [--retries <n>] [--retry-backoff <s>] "
      "[--checkpoint-interval <ops>] "
      "[--out <results.json>] [--stats <stats.json>] "
      "[--trace-out <trace.json>] [--stats-dump <seconds>]\n"
      "       ddsim_serve --listen <port> [service options]\n\n"
      "--listen runs a network worker on 127.0.0.1:<port> (0 = ephemeral)\n"
      "serving framed submissions from ddsim_router; no manifest is read.\n\n"
      "manifest lines: <qasm-path> [strategy=seq|k=<n>|maxsize=<n>|"
      "adaptive[=<r>]] [dd-repeating] [pipeline[=on|off]] "
      "[pipeline-depth=<n>] [threads=<n>] [detect-repetitions] [seed=<n>] "
      "[repeat=<n>] [priority=high|normal|low] [deadline=<s>] "
      "[time-limit=<s>] [node-budget=<n>] [label=<text>]\n");
}

std::string dirOf(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string{} : path.substr(0, slash + 1);
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) {
          out += c;
        }
    }
  }
  return out;
}

struct SubmittedJob {
  std::string label;
  std::uint64_t seed = 0;
  ddsim::serve::JobHandle handle;
  std::string admissionError;  ///< non-empty when never admitted
};

void writeResults(std::FILE* f, const std::vector<SubmittedJob>& jobs) {
  using ddsim::serve::JobStatus;
  std::fprintf(f, "{\n  \"jobs\": [\n");
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const SubmittedJob& job = jobs[i];
    std::fprintf(f, "    {\"label\": \"%s\", \"seed\": %llu, ",
                 jsonEscape(job.label).c_str(),
                 static_cast<unsigned long long>(job.seed));
    if (!job.admissionError.empty()) {
      std::fprintf(f, "\"status\": \"rejected\", \"error\": \"%s\"}",
                   jsonEscape(job.admissionError).c_str());
    } else {
      const ddsim::serve::JobResult& r = job.handle.wait();
      std::fprintf(f,
                   "\"status\": \"%s\", \"from_cache\": %s, "
                   "\"coalesced\": %s, \"worker\": %d, "
                   "\"queue_seconds\": %.6f, \"run_seconds\": %.6f",
                   ddsim::serve::statusName(r.status).c_str(),
                   r.fromCache ? "true" : "false",
                   r.coalesced ? "true" : "false", r.worker, r.queueSeconds,
                   r.runSeconds);
      if (r.status == JobStatus::Completed || r.status == JobStatus::Cached) {
        std::string bits;
        for (const bool b : r.classicalBits) {
          bits += b ? '1' : '0';
        }
        std::fprintf(f,
                     ", \"classical_bits\": \"%s\", \"applied_gates\": %llu, "
                     "\"peak_state_nodes\": %zu, \"degradation_events\": %llu",
                     bits.c_str(),
                     static_cast<unsigned long long>(r.stats.appliedGates),
                     r.stats.peakStateNodes,
                     static_cast<unsigned long long>(
                         r.stats.degradationEvents));
      }
      if (r.partial) {
        std::fprintf(
            f,
            ", \"partial\": {\"ops_completed\": %llu, "
            "\"peak_live_nodes\": %zu, \"elapsed_seconds\": %.6f}",
            static_cast<unsigned long long>(r.partial->opsCompleted),
            r.partial->peakLiveNodes, r.partial->elapsedSeconds);
      }
      if (!r.error.empty()) {
        std::fprintf(f, ", \"error\": \"%s\"", jsonEscape(r.error).c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "%s\n", i + 1 < jobs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ddsim;

  if (argc < 2 || std::strcmp(argv[1], "--help") == 0) {
    usage();
    return argc < 2 ? 1 : 0;
  }
  std::string manifestPath;
  serve::ServiceConfig serviceConfig;
  serviceConfig.workers = 0;  // hardware concurrency
  std::string outPath = "serve_results.json";
  std::string statsPath;
  std::string tracePath;
  double statsDumpSeconds = 0.0;
  // Worker mode: bind this port instead of reading a manifest.
  std::optional<std::uint16_t> listenPort;
  // Tri-state: unset (follow the manifest), force on, force off.
  std::optional<bool> pipelineOverride;
  // Unset: follow the manifest's per-job threads= option.
  std::optional<std::size_t> threadsOverride;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool hasValue = i + 1 < argc;
    if (!arg.empty() && arg.front() != '-') {
      manifestPath = arg;
    } else if (arg == "--listen" && hasValue) {
      listenPort = static_cast<std::uint16_t>(
          std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--workers" && hasValue) {
      serviceConfig.workers = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--queue" && hasValue) {
      serviceConfig.queueCapacity = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--cache" && hasValue) {
      serviceConfig.cacheCapacity = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--block-cache" && hasValue) {
      serviceConfig.blockCacheCapacity = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--pipeline" && hasValue) {
      const std::string value = argv[++i];
      if (value != "on" && value != "off") {
        std::fprintf(stderr, "--pipeline: expected on|off, got '%s'\n",
                     value.c_str());
        return 1;
      }
      pipelineOverride = value == "on";
    } else if (arg == "--threads" && hasValue) {
      threadsOverride = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--cache-dir" && hasValue) {
      serviceConfig.cacheDir = argv[++i];
    } else if (arg == "--retries" && hasValue) {
      serviceConfig.retry.maxAttempts =
          std::max<std::size_t>(1, std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--retry-backoff" && hasValue) {
      serviceConfig.retry.baseBackoffSeconds = std::strtod(argv[++i], nullptr);
    } else if (arg == "--checkpoint-interval" && hasValue) {
      serviceConfig.checkpointIntervalOps =
          std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--out" && hasValue) {
      outPath = argv[++i];
    } else if (arg == "--stats" && hasValue) {
      statsPath = argv[++i];
    } else if (arg == "--trace-out" && hasValue) {
      tracePath = argv[++i];
    } else if (arg == "--stats-dump" && hasValue) {
      statsDumpSeconds = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage();
      return 1;
    }
  }

  if (listenPort) {
    // Worker mode: serve framed submissions until a drain signal arrives.
    struct sigaction sa = {};
    sa.sa_handler = onSignal;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
    try {
      net::WorkerServer server(serviceConfig, *listenPort);
      std::printf("ddsim_serve: worker listening on 127.0.0.1:%u\n",
                  static_cast<unsigned>(server.port()));
      std::fflush(stdout);  // the CI harness greps for this line
      while (gSignal.load(std::memory_order_relaxed) == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
      std::fprintf(stderr, "ddsim_serve: signal %d — draining worker\n",
                   gSignal.load(std::memory_order_relaxed));
      server.requestStop();
      if (!statsPath.empty()) {
        std::ofstream sf(statsPath);
        sf << server.stats().toJson() << "\n";
        std::printf("wrote %s\n", statsPath.c_str());
      }
    } catch (const net::SocketError& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    return 0;
  }

  if (manifestPath.empty()) {
    std::fprintf(stderr, "error: no manifest (or --listen <port>) given\n");
    usage();
    return 1;
  }

  std::vector<serve::ManifestEntry> entries;
  try {
    entries = serve::parseManifestFile(manifestPath);
  } catch (const serve::ManifestError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (entries.empty()) {
    std::fprintf(stderr, "error: manifest has no jobs\n");
    return 1;
  }

  const std::string baseDir = dirOf(manifestPath);

  // Install the collector before the service spawns its workers so every
  // span of the run — including package-level ones — is recorded.
  obs::TraceCollector collector;
  if (!tracePath.empty()) {
    collector.install();
  }

  serve::SimulationService service(serviceConfig);
  std::printf("ddsim_serve: %zu manifest entries, %zu workers\n",
              entries.size(), service.workerCount());

  // Graceful drain on SIGINT/SIGTERM: the handler only sets a flag; the
  // submission and wait loops below poll it, stop admitting, let running
  // jobs finish, and still flush the cache snapshot and all JSON outputs.
  struct sigaction sa = {};
  sa.sa_handler = onSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  // Periodic stats dump: one line of ServiceStats JSON to stderr every
  // --stats-dump seconds until the run finishes.
  std::mutex dumpMutex;
  std::condition_variable dumpCv;
  bool dumpStop = false;
  std::thread dumpThread;
  if (statsDumpSeconds > 0.0) {
    dumpThread = std::thread([&] {
      std::unique_lock<std::mutex> lock(dumpMutex);
      while (!dumpCv.wait_for(lock,
                              std::chrono::duration<double>(statsDumpSeconds),
                              [&] { return dumpStop; })) {
        const std::string json = service.stats().toJson();
        std::fprintf(stderr, "%s\n", json.c_str());
      }
    });
  }

  std::vector<SubmittedJob> jobs;
  for (const auto& entry : entries) {
    if (gSignal.load(std::memory_order_relaxed) != 0) {
      break;  // drain requested: stop admitting new work
    }
    std::shared_ptr<const ir::Circuit> circuit;
    std::string loadError;
    try {
      const std::string path = entry.path.front() == '/'
                                   ? entry.path
                                   : baseDir + entry.path;
      ir::Circuit parsed = ir::parseQasmFile(path);
      if (entry.detectRepetitions) {
        parsed = ir::detectRepetitions(parsed);
      }
      circuit = std::make_shared<const ir::Circuit>(std::move(parsed));
    } catch (const std::exception& e) {
      loadError = e.what();
    }
    for (std::size_t i = 0; i < entry.repeat; ++i) {
      SubmittedJob job;
      job.label = entry.repeat > 1
                      ? entry.label + "#" + std::to_string(i)
                      : entry.label;
      job.seed = entry.repeat > 1 ? sim::deriveSeed(entry.seed, i)
                                  : entry.seed;
      if (!loadError.empty()) {
        job.admissionError = loadError;
      } else {
        serve::JobSpec spec;
        spec.circuit = circuit;
        spec.config = entry.config;
        if (pipelineOverride) {
          spec.config.pipeline = *pipelineOverride;
        }
        if (threadsOverride) {
          spec.config.threads = *threadsOverride;
        }
        spec.seed = job.seed;
        spec.priority = entry.priority;
        spec.deadlineSeconds = entry.deadlineSeconds;
        spec.label = job.label;
        if (auto handle = service.trySubmit(spec)) {
          job.handle = *handle;
        } else {
          job.admissionError = "admission queue full";
        }
      }
      jobs.push_back(std::move(job));
    }
  }

  // Wait for everything, then report. Poll in short slices so a drain
  // signal can cut queued (not-yet-running) jobs short: shutdown(drain=false)
  // resolves them as Cancelled while in-flight jobs run to completion, so
  // every wait() below still returns promptly.
  bool drained = false;
  for (const auto& job : jobs) {
    if (!job.admissionError.empty()) {
      continue;
    }
    while (!job.handle.waitFor(0.1)) {
      if (!drained && gSignal.load(std::memory_order_relaxed) != 0) {
        std::fprintf(stderr,
                     "ddsim_serve: signal %d — draining (running jobs "
                     "finish, queued jobs cancel)\n",
                     gSignal.load(std::memory_order_relaxed));
        service.shutdown(/*drain=*/false);
        drained = true;
      }
    }
  }
  if (!drained && gSignal.load(std::memory_order_relaxed) != 0) {
    // Signal arrived after the last job resolved: still shut down cleanly
    // (flushes the cache snapshot) before reporting.
    service.shutdown(/*drain=*/true);
    drained = true;
  }

  if (dumpThread.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(dumpMutex);
      dumpStop = true;
    }
    dumpCv.notify_all();
    dumpThread.join();
  }

  if (!tracePath.empty()) {
    // Join the workers before exporting: the trace lifecycle contract
    // requires recording threads to have quiesced.
    service.shutdown(/*drain=*/true);
    collector.stop();
    std::ofstream tf(tracePath);
    if (!tf) {
      std::fprintf(stderr, "error: cannot write %s\n", tracePath.c_str());
      return 1;
    }
    obs::writeChromeTrace(tf, collector);
    std::printf("wrote %s (%zu events, %llu dropped)\n", tracePath.c_str(),
                collector.eventCount(),
                static_cast<unsigned long long>(collector.droppedCount()));
  }

  std::FILE* f = std::fopen(outPath.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", outPath.c_str());
    return 1;
  }
  writeResults(f, jobs);
  std::fclose(f);
  std::printf("wrote %s\n", outPath.c_str());

  const serve::ServiceStats stats = service.stats();
  if (!statsPath.empty()) {
    std::ofstream sf(statsPath);
    sf << stats.toJson() << "\n";
    std::printf("wrote %s\n", statsPath.c_str());
  }
  std::printf(
      "finished: %llu completed, %llu cached, %llu coalesced, %llu failed "
      "(%.1f jobs/s, queue mean %.3f s)\n",
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.cached),
      static_cast<unsigned long long>(stats.coalesced),
      static_cast<unsigned long long>(stats.failed + stats.timedOut +
                                      stats.expired +
                                      stats.resourceExhausted),
      stats.jobsPerSecond, stats.queueLatencyMeanSeconds);
  return 0;
}
