/// \file ddsim_router.cpp
/// \brief Distributed front-end: route a job manifest over ddsim_serve
///        workers with consistent-hash sharding (see router/router.hpp and
///        DESIGN.md "Distributed serving").
///
/// Usage:
///   ddsim_router <manifest.txt> --worker <host:port> [--worker <host:port>
///                ...] [--vnodes <n>] [--retries <n>]
///                [--out <results.json>] [--stats <stats.json>]
///
/// Workers are `ddsim_serve --listen <port>` processes started separately
/// (hosts must be dotted quads; localhost clusters use 127.0.0.1). Each
/// manifest job is hashed by its cache identity — circuit content hash,
/// strategy config hash, seed — onto the worker ring, so identical jobs
/// always land on the same shard and hit its result cache instead of
/// re-simulating elsewhere. A worker that dies mid-run is removed from the
/// ring and its unresolved jobs are re-routed to the survivors (resuming
/// from streamed checkpoints when the dead worker produced any), bounded by
/// --retries total submissions per job.
///
/// --stats writes the merged ClusterStats JSON: {"workers_live": n,
/// "aggregate": {...}, "shards": [{"endpoint": ..., "stats": {...}}]} —
/// per-shard ServiceStats plus their element-wise merge (counters summed,
/// histograms merged bucket-wise; tools/check_stats_merge.py validates the
/// invariant).
///
/// Exit status: 0 when every job reached a terminal Result, 2 when any job
/// was lost (re-route budget or the whole ring exhausted), 1 on usage or
/// connectivity errors.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "router/router.hpp"
#include "serve/manifest.hpp"
#include "sim/simulator.hpp"

namespace {

void usage() {
  std::printf(
      "usage: ddsim_router <manifest.txt> --worker <host:port> "
      "[--worker <host:port> ...] [--vnodes <n>] [--retries <n>] "
      "[--out <results.json>] [--stats <stats.json>]\n\n"
      "workers are `ddsim_serve --listen <port>` processes; manifest format "
      "as for ddsim_serve (QASM paths relative to the manifest).\n");
}

std::string dirOf(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string{} : path.substr(0, slash + 1);
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) {
          out += c;
        }
    }
  }
  return out;
}

void writeResults(std::FILE* f, const std::vector<ddsim::router::RouterJob>& jobs,
                  const std::vector<ddsim::router::RouterResult>& results) {
  std::fprintf(f, "{\n  \"jobs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& job = jobs[i];
    const auto& r = results[i];
    std::string bits;
    for (const bool b : r.payload.classicalBits) {
      bits += b ? '1' : '0';
    }
    std::fprintf(
        f,
        "    {\"label\": \"%s\", \"seed\": %llu, \"status\": \"%s\", "
        "\"worker\": \"%s\", \"from_cache\": %s, \"coalesced\": %s, "
        "\"submissions\": %zu, \"rerouted\": %s, "
        "\"resumed_from_checkpoint\": %s, \"lost\": %s, "
        "\"classical_bits\": \"%s\", \"applied_gates\": %llu, "
        "\"queue_seconds\": %.6f, \"run_seconds\": %.6f",
        jsonEscape(job.label).c_str(),
        static_cast<unsigned long long>(job.seed),
        ddsim::net::wireStatusName(r.payload.status).c_str(),
        jsonEscape(r.worker).c_str(), r.payload.fromCache ? "true" : "false",
        r.payload.coalesced ? "true" : "false", r.submissions,
        r.rerouted ? "true" : "false",
        r.resumedFromCheckpoint ? "true" : "false", r.lost ? "true" : "false",
        bits.c_str(),
        static_cast<unsigned long long>(r.payload.stats.appliedGates),
        r.payload.queueSeconds, r.payload.runSeconds);
    if (!r.payload.error.empty()) {
      std::fprintf(f, ", \"error\": \"%s\"",
                   jsonEscape(r.payload.error).c_str());
    }
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ddsim;

  if (argc < 2 || std::strcmp(argv[1], "--help") == 0) {
    usage();
    return argc < 2 ? 1 : 0;
  }
  const std::string manifestPath = argv[1];
  router::RouterConfig routerConfig;
  std::string outPath = "router_results.json";
  std::string statsPath;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool hasValue = i + 1 < argc;
    if (arg == "--worker" && hasValue) {
      routerConfig.workers.emplace_back(argv[++i]);
    } else if (arg == "--vnodes" && hasValue) {
      routerConfig.virtualNodes = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--retries" && hasValue) {
      routerConfig.retry.maxAttempts =
          std::max<std::size_t>(1, std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--out" && hasValue) {
      outPath = argv[++i];
    } else if (arg == "--stats" && hasValue) {
      statsPath = argv[++i];
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage();
      return 1;
    }
  }
  if (routerConfig.workers.empty()) {
    std::fprintf(stderr, "error: at least one --worker <host:port> required\n");
    usage();
    return 1;
  }

  std::vector<serve::ManifestEntry> entries;
  try {
    entries = serve::parseManifestFile(manifestPath);
  } catch (const serve::ManifestError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (entries.empty()) {
    std::fprintf(stderr, "error: manifest has no jobs\n");
    return 1;
  }
  const std::string baseDir = dirOf(manifestPath);

  // The router ships QASM text, not parsed circuits: workers parse (and
  // fold repetitions) themselves, so the wire stays self-contained.
  std::vector<router::RouterJob> jobs;
  for (const auto& entry : entries) {
    const std::string path =
        entry.path.front() == '/' ? entry.path : baseDir + entry.path;
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    for (std::size_t i = 0; i < entry.repeat; ++i) {
      router::RouterJob job;
      job.label = entry.repeat > 1 ? entry.label + "#" + std::to_string(i)
                                   : entry.label;
      job.qasm = text.str();
      job.config = entry.config;
      job.seed =
          entry.repeat > 1 ? sim::deriveSeed(entry.seed, i) : entry.seed;
      job.priority = entry.priority;
      job.deadlineSeconds = entry.deadlineSeconds;
      job.detectRepetitions = entry.detectRepetitions;
      jobs.push_back(std::move(job));
    }
  }

  router::Router r(routerConfig);
  try {
    r.connect();
  } catch (const router::RouterError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("ddsim_router: %zu jobs over %zu live workers\n", jobs.size(),
              r.liveWorkers());

  const std::vector<router::RouterResult> results = r.run(jobs);

  std::FILE* f = std::fopen(outPath.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", outPath.c_str());
    return 1;
  }
  writeResults(f, jobs, results);
  std::fclose(f);
  std::printf("wrote %s\n", outPath.c_str());

  if (!statsPath.empty()) {
    const router::ClusterStats cluster = r.clusterStats();
    std::ofstream sf(statsPath);
    sf << cluster.toJson() << "\n";
    std::printf("wrote %s (%zu shards)\n", statsPath.c_str(),
                cluster.shards.size());
  }

  const router::RouterCounters c = r.counters();
  r.shutdown();
  std::printf(
      "finished: %llu results (%llu submissions, %llu rejections, "
      "%llu re-routes over %llu worker deaths, %llu resumes, %llu lost)\n",
      static_cast<unsigned long long>(c.resultsReceived),
      static_cast<unsigned long long>(c.submissionsSent),
      static_cast<unsigned long long>(c.rejectionsReceived),
      static_cast<unsigned long long>(c.rerouted),
      static_cast<unsigned long long>(c.workerDeaths),
      static_cast<unsigned long long>(c.resumesSent),
      static_cast<unsigned long long>(c.lostJobs));
  return c.lostJobs > 0 ? 2 : 0;
}
