// 5-qubit Grover search for |10110> (marked element 22), 4 iterations,
// written with this project's multi-control extension (mcz).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
h q[0];
h q[1];
h q[2];
h q[3];
h q[4];
// --- iteration 1: oracle (phase-flip |10110>), then diffusion
x q[0]; x q[3];
mcz q[1], q[2], q[3], q[4], q[0];
x q[0]; x q[3];
h q[0]; h q[1]; h q[2]; h q[3]; h q[4];
x q[0]; x q[1]; x q[2]; x q[3]; x q[4];
mcz q[1], q[2], q[3], q[4], q[0];
x q[0]; x q[1]; x q[2]; x q[3]; x q[4];
h q[0]; h q[1]; h q[2]; h q[3]; h q[4];
// --- iteration 2
x q[0]; x q[3];
mcz q[1], q[2], q[3], q[4], q[0];
x q[0]; x q[3];
h q[0]; h q[1]; h q[2]; h q[3]; h q[4];
x q[0]; x q[1]; x q[2]; x q[3]; x q[4];
mcz q[1], q[2], q[3], q[4], q[0];
x q[0]; x q[1]; x q[2]; x q[3]; x q[4];
h q[0]; h q[1]; h q[2]; h q[3]; h q[4];
// --- iteration 3
x q[0]; x q[3];
mcz q[1], q[2], q[3], q[4], q[0];
x q[0]; x q[3];
h q[0]; h q[1]; h q[2]; h q[3]; h q[4];
x q[0]; x q[1]; x q[2]; x q[3]; x q[4];
mcz q[1], q[2], q[3], q[4], q[0];
x q[0]; x q[1]; x q[2]; x q[3]; x q[4];
h q[0]; h q[1]; h q[2]; h q[3]; h q[4];
// --- iteration 4
x q[0]; x q[3];
mcz q[1], q[2], q[3], q[4], q[0];
x q[0]; x q[3];
h q[0]; h q[1]; h q[2]; h q[3]; h q[4];
x q[0]; x q[1]; x q[2]; x q[3]; x q[4];
mcz q[1], q[2], q[3], q[4], q[0];
x q[0]; x q[1]; x q[2]; x q[3]; x q[4];
h q[0]; h q[1]; h q[2]; h q[3]; h q[4];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
measure q[3] -> c[3];
measure q[4] -> c[4];
