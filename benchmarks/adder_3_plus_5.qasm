// Draper adder in Fourier space on 3 qubits: |x> -> |x + 5 mod 8>.
// Swapless QFT, constant phase additions, swapless inverse QFT
// (angles follow src/algo/arithmetic.cpp: theta_j = 2*pi*5 / 2^(j+1)).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
// QFT (no swaps)
h q[2];
cp(pi/2) q[1], q[2];
cp(pi/4) q[0], q[2];
h q[1];
cp(pi/2) q[0], q[1];
h q[0];
// phiADD(5): 5 mod 2 = 1, 5 mod 4 = 1, 5 mod 8 = 5
p(pi) q[0];
p(pi/2) q[1];
p(5*pi/4) q[2];
// inverse QFT (no swaps)
h q[0];
cp(-pi/2) q[0], q[1];
h q[1];
cp(-pi/4) q[0], q[2];
cp(-pi/2) q[1], q[2];
h q[2];
