/// \file bench_serve_throughput.cpp
/// \brief Serving-layer scaling bench: jobs/sec over a mixed Grover/QFT
///        manifest at 1, 4 and hardware-concurrency workers.
///
/// Every job gets a distinct seed, so no two jobs share a cache key and
/// nothing coalesces — the bench measures pure worker-pool scaling, where
/// each simulation owns a private dd::Package and the only shared state is
/// the admission queue. Emits BENCH_serve.json with jobs/sec per pool size
/// and the speedup relative to one worker.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "algo/grover.hpp"
#include "algo/qft.hpp"
#include "bench_common.hpp"
#include "serve/service.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace ddsim;

/// The mixed workload: moderately sized Grover and QFT instances (with a
/// final measurement so results carry classical bits). Sized to run in a
/// few hundred milliseconds each, so a batch dominates thread start-up and
/// queue overhead but the whole sweep stays laptop-friendly.
std::vector<std::shared_ptr<const ir::Circuit>> makeWorkload() {
  std::vector<std::shared_ptr<const ir::Circuit>> circuits;
  algo::GroverOptions grover;
  grover.measure = true;
  for (const std::size_t n : {12U, 13U, 14U}) {
    circuits.push_back(std::make_shared<const ir::Circuit>(
        algo::makeGroverCircuit(n, /*marked=*/(1ULL << n) - 3, grover)));
  }
  for (const std::size_t n : {14U, 16U, 18U}) {
    // makeQFTCircuit allocates no classical bits; re-host it in a circuit
    // that has them so the jobs carry measured outcomes.
    ir::Circuit qft(n, n);
    qft.appendCircuit(algo::makeQFTCircuit(n));
    qft.measureAll();
    circuits.push_back(
        std::make_shared<const ir::Circuit>(std::move(qft)));
  }
  return circuits;
}

struct RunResult {
  std::size_t workers = 0;
  std::size_t jobs = 0;
  double wallSeconds = 0.0;
  double jobsPerSecond = 0.0;
  double meanQueueSeconds = 0.0;
};

RunResult runBatch(
    const std::vector<std::shared_ptr<const ir::Circuit>>& circuits,
    std::size_t workers, std::size_t jobsPerCircuit) {
  serve::ServiceConfig config;
  config.workers = workers;
  config.queueCapacity = circuits.size() * jobsPerCircuit + 8;
  config.cacheCapacity = 0;  // measure pure simulation throughput
  config.startPaused = true; // admission excluded from the timed window
  serve::SimulationService service(config);

  std::vector<serve::JobHandle> handles;
  std::uint64_t stream = 0;
  for (std::size_t rep = 0; rep < jobsPerCircuit; ++rep) {
    for (const auto& circuit : circuits) {
      serve::JobSpec spec;
      spec.circuit = circuit;
      spec.config = sim::StrategyConfig::kOperations(4);
      // Distinct decorrelated seeds: no cache key ever repeats.
      spec.seed = sim::deriveSeed(12345, stream++);
      handles.push_back(service.submit(std::move(spec)));
    }
  }

  const sim::Timer timer;
  service.start();
  for (const auto& handle : handles) {
    handle.wait();
  }
  RunResult r;
  r.wallSeconds = timer.seconds();
  r.workers = service.workerCount();
  r.jobs = handles.size();
  r.jobsPerSecond = static_cast<double>(r.jobs) / r.wallSeconds;
  r.meanQueueSeconds = service.stats().queueLatencyMeanSeconds;
  return r;
}

}  // namespace

int main() {
  const auto circuits = makeWorkload();
  const std::size_t hw = std::max(1U, std::thread::hardware_concurrency());
  std::vector<std::size_t> pools{1, 4};
  if (hw != 4 && hw != 1) {
    pools.push_back(hw);
  }

  std::printf("serve throughput: %zu circuits x 4 seeds, pools:",
              circuits.size());
  for (const std::size_t p : pools) {
    std::printf(" %zu", p);
  }
  std::printf(" (hardware_concurrency=%zu)\n", hw);
  bench::printRule();
  std::printf("%-10s %8s %12s %12s %10s\n", "workers", "jobs", "wall_s",
              "jobs/s", "speedup");

  std::vector<RunResult> results;
  for (const std::size_t p : pools) {
    // Warm-up pass keeps first-touch page faults out of the 1-worker
    // baseline (which everything else is normalized against).
    if (results.empty()) {
      runBatch(circuits, p, 1);
    }
    results.push_back(runBatch(circuits, p, /*jobsPerCircuit=*/4));
    const RunResult& r = results.back();
    const double speedup = results.front().wallSeconds / r.wallSeconds;
    std::printf("%-10zu %8zu %12.3f %12.2f %9.2fx\n", r.workers, r.jobs,
                r.wallSeconds, r.jobsPerSecond, speedup);
  }
  bench::printRule();

  std::FILE* f = std::fopen("BENCH_serve.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"serve\",\n  \"results\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunResult& r = results[i];
      std::fprintf(f,
                   "    {\"name\": \"workers=%zu\", \"workers\": %zu, "
                   "\"jobs\": %zu, \"wall_ms\": %.3f, \"jobs_per_sec\": "
                   "%.3f, \"speedup_vs_1\": %.3f, "
                   "\"queue_latency_mean_s\": %.6f}%s\n",
                   r.workers, r.workers, r.jobs, r.wallSeconds * 1e3,
                   r.jobsPerSecond,
                   results.front().wallSeconds / r.wallSeconds,
                   r.meanQueueSeconds,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_serve.json\n");
  }

  if (hw >= 4 && results.size() >= 2) {
    const double speedup = results[0].wallSeconds / results[1].wallSeconds;
    std::printf("4-worker speedup vs 1: %.2fx (acceptance floor: 2.5x)\n",
                speedup);
  } else {
    std::printf(
        "note: only %zu hardware threads — 4-worker speedup is not "
        "meaningful on this host\n",
        hw);
  }
  return 0;
}
