/// \file bench_dd_ops.cpp
/// \brief Micro-benchmarks of the DD primitives, quantifying the cost
///        asymmetry the paper exploits (Section III / Example 3 / Fig. 5):
///        matrix-matrix products of *small* elementary-gate DDs are cheap,
///        matrix-vector products against a *large* intermediate state DD
///        are expensive — the opposite of the array-based intuition.

#include <benchmark/benchmark.h>

#include <random>

#include "algo/supremacy.hpp"
#include "dd/package.hpp"
#include "ir/gate.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace ddsim;

constexpr std::size_t kQubits = 16;

/// A "large" intermediate state: simulate a supremacy-style prefix.
dd::VEdge makeLargeState(dd::Package& pkg) {
  const auto circuit = algo::makeSupremacyCircuit({4, 4, 10, 5});
  dd::VEdge state = pkg.makeZeroState();
  pkg.incRef(state);
  for (const auto& op : circuit.ops()) {
    const auto& s = static_cast<const ir::StandardOperation&>(*op);
    const dd::MEdge g = pkg.makeGateDD(s.matrix(), s.targets()[0], s.controls());
    dd::VEdge next = pkg.multiply(g, state);
    pkg.incRef(next);
    pkg.decRef(state);
    state = next;
  }
  return state;
}

void BM_MakeGateDD(benchmark::State& state) {
  dd::Package pkg(kQubits);
  const auto h = ir::gateMatrix(ir::GateType::H);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkg.makeGateDD(h, 7, {dd::Control{3}}));
  }
}
BENCHMARK(BM_MakeGateDD);

void BM_MakePermutationDD(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  dd::Package pkg(bits);
  std::vector<std::uint64_t> perm(1ULL << bits);
  for (std::uint64_t i = 0; i < perm.size(); ++i) {
    perm[i] = (i * 5 + 3) % perm.size();  // affine permutation (odd factor)
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkg.makePermutationDD(perm));
    state.PauseTiming();
    pkg.garbageCollect();
    state.ResumeTiming();
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(perm.size()));
}
BENCHMARK(BM_MakePermutationDD)->Arg(6)->Arg(8)->Arg(10)->Arg(12)->Complexity();

/// MxM of two elementary gate DDs: both operands linear-size.
void BM_MatrixMatrix_SmallGates(benchmark::State& state) {
  dd::Package pkg(kQubits);
  const dd::MEdge a =
      pkg.makeGateDD(ir::gateMatrix(ir::GateType::H), 3);
  const dd::MEdge b =
      pkg.makeGateDD(ir::gateMatrix(ir::GateType::X), 9, {dd::Control{3}});
  pkg.incRef(a);
  pkg.incRef(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkg.multiply(a, b));
    state.PauseTiming();
    pkg.garbageCollect();  // defeat the compute-table between iterations
    state.ResumeTiming();
  }
}
BENCHMARK(BM_MatrixMatrix_SmallGates);

/// MxV against a large intermediate state: the expensive step the paper's
/// strategies try to do less often.
void BM_MatrixVector_LargeState(benchmark::State& state) {
  dd::Package pkg(kQubits);
  dd::VEdge v = makeLargeState(pkg);
  const dd::MEdge g =
      pkg.makeGateDD(ir::gateMatrix(ir::GateType::H), 7);
  pkg.incRef(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkg.multiply(g, v));
    state.PauseTiming();
    pkg.garbageCollect();
    state.ResumeTiming();
  }
  state.counters["stateNodes"] =
      static_cast<double>(pkg.size(v));
}
BENCHMARK(BM_MatrixVector_LargeState);

/// The head-to-head of Example 3: apply two gates to a large state either
/// as two MxV (Eq. 1) or as one MxM plus one MxV (Eq. 2 for a window of 2).
void BM_Example3_TwoMxV(benchmark::State& state) {
  dd::Package pkg(kQubits);
  dd::VEdge v = makeLargeState(pkg);
  const dd::MEdge g1 =
      pkg.makeGateDD(ir::gateMatrix(ir::GateType::T), 4);
  const dd::MEdge g2 =
      pkg.makeGateDD(ir::gateMatrix(ir::GateType::X), 11, {dd::Control{4}});
  pkg.incRef(g1);
  pkg.incRef(g2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkg.multiply(g2, pkg.multiply(g1, v)));
    state.PauseTiming();
    pkg.garbageCollect();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_Example3_TwoMxV);

void BM_Example3_MxMThenMxV(benchmark::State& state) {
  dd::Package pkg(kQubits);
  dd::VEdge v = makeLargeState(pkg);
  const dd::MEdge g1 =
      pkg.makeGateDD(ir::gateMatrix(ir::GateType::T), 4);
  const dd::MEdge g2 =
      pkg.makeGateDD(ir::gateMatrix(ir::GateType::X), 11, {dd::Control{4}});
  pkg.incRef(g1);
  pkg.incRef(g2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkg.multiply(pkg.multiply(g2, g1), v));
    state.PauseTiming();
    pkg.garbageCollect();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_Example3_MxMThenMxV);

void BM_VectorAdd(benchmark::State& state) {
  dd::Package pkg(10);
  std::mt19937_64 rng(1);
  std::normal_distribution<double> dist;
  std::vector<dd::ComplexValue> a(1U << 10);
  std::vector<dd::ComplexValue> b(1U << 10);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = {dist(rng), dist(rng)};
    b[i] = {dist(rng), dist(rng)};
  }
  const dd::VEdge va = pkg.makeStateFromVector(a);
  const dd::VEdge vb = pkg.makeStateFromVector(b);
  pkg.incRef(va);
  pkg.incRef(vb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkg.add(va, vb));
    state.PauseTiming();
    pkg.garbageCollect();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_VectorAdd);

/// Cost of one instrumentation site with no collector installed — the
/// "zero-cost when disabled" contract of obs::ScopedSpan (one relaxed load
/// plus one branch; should stay within noise of an empty loop).
void BM_ScopedSpanDisabled(benchmark::State& state) {
  for (auto _ : state) {
    const obs::ScopedSpan span("bench.disabled", obs::cat::kDd);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ScopedSpanDisabled);

void BM_InnerProduct(benchmark::State& state) {
  dd::Package pkg(kQubits);
  dd::VEdge v = makeLargeState(pkg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkg.innerProduct(v, v));
    state.PauseTiming();
    pkg.garbageCollect();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_InnerProduct);

}  // namespace

BENCHMARK_MAIN();
