/// \file bench_ablation_combine.cpp
/// \brief Ablations on *how* operations are combined, beyond the paper's
///        two general strategies:
///
///  1. Full combination (Eq. 2) — left fold vs. balanced pairwise tree.
///     The paper argues full combination is not suitable because the
///     product DD grows; the tree order is the strongest version of that
///     idea (minimizing the number of "large x small" products), so its
///     failure or success isolates whether the *association order* or the
///     *product size itself* is the bottleneck.
///
///  2. Windowed strategies (k-operations / max-size / adaptive) for the
///     windowed middle ground, including the adaptive extension that sizes
///     the window relative to the current state DD.

#include <cstdio>
#include <functional>
#include <vector>

#include "bench_common.hpp"
#include "sim/equivalence.hpp"

namespace {

using namespace ddsim;

/// Time building the full circuit unitary by a left fold (paper Eq. 2).
double timeLeftFold(const ir::Circuit& circuit, std::size_t* nodes) {
  const sim::Timer timer;
  dd::Package pkg(circuit.numQubits());
  const dd::MEdge u = sim::buildCircuitMatrix(pkg, circuit);
  *nodes = pkg.size(u);
  return timer.seconds();
}

/// Time building the full unitary as a balanced pairwise tree.
double timeBalancedTree(const ir::Circuit& circuit, std::size_t* nodes) {
  const sim::Timer timer;
  dd::Package pkg(circuit.numQubits());
  const ir::Circuit flat = circuit.flattened();

  std::vector<dd::MEdge> level;
  level.reserve(flat.numOps());
  for (const auto& op : flat.ops()) {
    ir::Circuit single(circuit.numQubits());
    single.append(op->clone());
    dd::MEdge g = sim::buildCircuitMatrix(pkg, single);
    pkg.incRef(g);
    level.push_back(g);
  }
  while (level.size() > 1) {
    std::vector<dd::MEdge> next;
    next.reserve(level.size() / 2 + 1);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      // level[i] is applied first: product = later * earlier.
      dd::MEdge prod = pkg.multiply(level[i + 1], level[i]);
      pkg.incRef(prod);
      pkg.decRef(level[i]);
      pkg.decRef(level[i + 1]);
      next.push_back(prod);
    }
    if (level.size() % 2 != 0) {
      next.push_back(level.back());
    }
    level = std::move(next);
    pkg.maybeGarbageCollect();
  }
  *nodes = pkg.size(level[0]);
  return timer.seconds();
}

}  // namespace

int main() {
  // Much smaller instances than the figure benches: full combination
  // (Eq. 2) builds the whole circuit unitary, whose DD approaches 4^n nodes
  // for unstructured circuits — the blow-up regime is the point here, but
  // it must stay within memory.
  const std::vector<bench::Instance> instances = {
      {"grover_8", [] { return algo::makeGroverCircuit(8, 123); }},
      {"shor_15_7_11", [] { return algo::makeShorBeauregardCircuit(15, 7); }},
      {"supremacy_8_9",
       [] { return algo::makeSupremacyCircuit({3, 3, 8, 7}); }},
  };

  std::printf("Ablation 1 — full operation combination (Eq. 2): association "
              "order\n");
  bench::printRule(86);
  std::printf("%-16s %14s %12s %14s %12s\n", "benchmark", "leftfold[s]",
              "nodes", "balanced[s]", "nodes");
  bench::printRule(86);
  for (const auto& inst : instances) {
    // The unitary of a circuit with measurements is undefined; these three
    // are measurement-free except shor — strip trailing measurement rounds
    // by building only the first CUa block for the shor instance.
    ir::Circuit circuit = inst.make();
    if (inst.name.rfind("shor", 0) == 0) {
      ir::Circuit prefix(circuit.numQubits());
      for (const auto& op : circuit.ops()) {
        if (op->kind() != ir::OpKind::Standard) {
          break;
        }
        prefix.append(op->clone());
      }
      circuit = std::move(prefix);
    }
    std::size_t nodesFold = 0;
    std::size_t nodesTree = 0;
    const double tFold = timeLeftFold(circuit, &nodesFold);
    const double tTree = timeBalancedTree(circuit, &nodesTree);
    std::printf("%-16s %14.3f %12zu %14.3f %12zu\n", inst.name.c_str(), tFold,
                nodesFold, tTree, nodesTree);
    std::fflush(stdout);
  }

  std::printf("\nAblation 2 — windowed strategies (incl. adaptive "
              "extension)\n");
  bench::printRule(86);
  std::printf("%-16s %10s %10s %10s %12s %12s\n", "benchmark", "seq[s]",
              "k=8[s]", "s=1024[s]", "adapt.25[s]", "adapt1.0[s]");
  bench::printRule(86);
  const double cap = 120.0;
  for (const auto& inst : instances) {
    const ir::Circuit circuit = inst.make();
    const double tSeq =
        bench::timedRun(circuit, sim::StrategyConfig::sequential(), cap);
    const double tK =
        bench::timedRun(circuit, sim::StrategyConfig::kOperations(8), cap);
    const double tS =
        bench::timedRun(circuit, sim::StrategyConfig::maxSizeStrategy(1024), cap);
    const double tA25 =
        bench::timedRun(circuit, sim::StrategyConfig::adaptive(0.25), cap);
    const double tA1 =
        bench::timedRun(circuit, sim::StrategyConfig::adaptive(1.0), cap);
    std::printf("%-16s %10s %10s %10s %12s %12s\n", inst.name.c_str(),
                bench::formatSeconds(tSeq, cap).c_str(),
                bench::formatSeconds(tK, cap).c_str(),
                bench::formatSeconds(tS, cap).c_str(),
                bench::formatSeconds(tA25, cap).c_str(),
                bench::formatSeconds(tA1, cap).c_str());
    std::fflush(stdout);
  }
  return 0;
}
