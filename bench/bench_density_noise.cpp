/// \file bench_density_noise.cpp
/// \brief Scaling of noisy density-matrix simulation — the all-MxM workload.
///
/// Every step of density-matrix simulation is a matrix-matrix product
/// (rho -> U rho U^dagger, plus a Kraus sum per noisy qubit), i.e. the
/// operation the paper rehabilitates for DDs. This bench records how run
/// time and the density-DD size scale with qubit count and noise strength
/// on GHZ preparation (compact rho) and QFT prefixes (dense rho).

#include <cstdio>
#include <vector>

#include "algo/supremacy.hpp"
#include "algo/textbook.hpp"
#include "bench_common.hpp"
#include "sim/density.hpp"

namespace {

using namespace ddsim;

struct Row {
  const char* family;
  std::size_t qubits;
  ir::Circuit circuit;
};

void report(const Row& row, double p) {
  sim::NoiseModel noise;
  if (p > 0) {
    noise.channels.push_back(sim::NoiseChannel::depolarizing(p));
  }
  sim::DensityMatrixSimulator simulator(row.circuit, noise);
  const auto result = simulator.run();
  // purity = Tr(rho^2) multiplies rho with itself; on large, dense-ish
  // density DDs that costs more than the whole simulation, so skip it there.
  char purity[16] = "     -";
  if (result.finalNodes < 10000) {
    std::snprintf(purity, sizeof purity, "%.4f",
                  simulator.purity(result.rho));
  }
  std::printf("%-10s n=%-3zu p=%-5.3f  time %8.3f s  rho nodes: peak %6zu "
              "final %6zu  purity %s\n",
              row.family, row.qubits, p, result.wallSeconds, result.peakNodes,
              result.finalNodes, purity);
  std::fflush(stdout);
}

}  // namespace

int main() {
  std::printf("Density-matrix simulation scaling (rho -> U rho U^dagger: "
              "matrix-matrix products only)\n");
  ddsim::bench::printRule(96);

  std::vector<Row> rows;
  for (const std::size_t n : {4U, 8U, 12U, 16U, 20U}) {
    rows.push_back({"ghz", n, ddsim::algo::makeGHZCircuit(n)});
  }
  rows.push_back(
      {"supremacy", 9, ddsim::algo::makeSupremacyCircuit({3, 3, 8, 7})});

  for (const auto& row : rows) {
    for (const double p : {0.0, 0.01}) {
      report(row, p);
    }
  }

  std::printf(
      "\nNoiseless rho = |psi><psi| stays as compact as the state DD. Noise "
      "buys mixedness with nodes: depolarizing channels inflate the density "
      "DD by orders of magnitude (though still far below the dense 4^n), "
      "which is the memory price of exact open-system simulation.\n");
  return 0;
}
