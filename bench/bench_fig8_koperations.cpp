/// \file bench_fig8_koperations.cpp
/// \brief Reproduces Fig. 8 of the paper: speed-up of the *k-operations*
///        strategy over sequential (Eq. 1) DD simulation, as a function of
///        k, per benchmark plus the average line.
///
/// Expected shape: speed-up ~1 at k=1 (identical schedule), rising to a
/// maximum for moderate k, then degrading as the accumulated product DD
/// grows too large (the paper's "combining all operations is not a suitable
/// option").

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main() {
  using namespace ddsim;

  const std::vector<std::size_t> ks = {1, 2, 4, 8, 16, 32, 64};
  // Pipelined variants: the same schedule with the block builder running
  // on its own thread (PR 5). Kept to the mid-range k values where the
  // MxM accumulation is substantial enough to overlap.
  const std::vector<std::size_t> pipedKs = {8, 32};
  // Parallel-kernel variants: same schedule with two kernel workers inside
  // the main package (task-parallel multiply/add recursion). Measurement
  // outcomes stay identical to serial; only wall time changes.
  const std::vector<std::size_t> parKs = {8, 32};
  const auto instances = bench::figureBenchmarks();

  std::printf("Fig. 8 — speed-up of strategy k-operations vs. sequential DD "
              "simulation\n");
  bench::printRule();
  std::printf("%-18s %10s", "benchmark", "t_seq[s]");
  for (const std::size_t k : ks) {
    std::printf("  k=%-5zu", k);
  }
  for (const std::size_t k : pipedKs) {
    std::printf("  k=%zu+p ", k);
  }
  for (const std::size_t k : parKs) {
    std::printf("  k=%zu+t ", k);
  }
  std::printf("\n");
  bench::printRule();

  // Per-run budget, as in the paper's CPU-time-capped evaluation. A cell
  // that exceeds it is reported as "t/o" (speed-up below 0.1 in practice)
  // and enters the average as 0 — i.e. as "no speed-up achieved".
  const double cap = 60.0;

  std::vector<double> sums(ks.size(), 0.0);
  std::vector<double> pipedSums(pipedKs.size(), 0.0);
  std::vector<double> parSums(parKs.size(), 0.0);
  std::vector<bench::BenchRecord> records;
  for (const auto& inst : instances) {
    const ir::Circuit circuit = inst.make();
    sim::SimulationStats seqStats;
    const double tSeq = bench::timedRun(
        circuit, sim::StrategyConfig::sequential(), cap, &seqStats);
    records.push_back(
        bench::makeRecord(inst.name + "/sequential", tSeq, seqStats));
    std::printf("%-18s %10s", inst.name.c_str(),
                bench::formatSeconds(tSeq, cap).c_str());
    for (std::size_t i = 0; i < ks.size(); ++i) {
      sim::SimulationStats s;
      const double t = bench::timedRun(
          circuit, sim::StrategyConfig::kOperations(ks[i]), cap, &s);
      records.push_back(bench::makeRecord(
          inst.name + "/k=" + std::to_string(ks[i]), t, s));
      if (std::isinf(t)) {
        std::printf("  %7s", "t/o");
      } else {
        const double speedup = tSeq / t;
        sums[i] += speedup;
        std::printf("  %7.2f", speedup);
      }
    }
    for (std::size_t i = 0; i < pipedKs.size(); ++i) {
      sim::StrategyConfig config = sim::StrategyConfig::kOperations(pipedKs[i]);
      config.pipeline = true;
      sim::SimulationStats s;
      const double t = bench::timedRun(circuit, config, cap, &s);
      records.push_back(bench::makeRecord(
          inst.name + "/k=" + std::to_string(pipedKs[i]) + "+pipe", t, s));
      if (std::isinf(t)) {
        std::printf("  %7s", "t/o");
      } else {
        const double speedup = tSeq / t;
        pipedSums[i] += speedup;
        std::printf("  %7.2f", speedup);
      }
    }
    for (std::size_t i = 0; i < parKs.size(); ++i) {
      sim::StrategyConfig config = sim::StrategyConfig::kOperations(parKs[i]);
      config.threads = 2;
      sim::SimulationStats s;
      const double t = bench::timedRun(circuit, config, cap, &s);
      records.push_back(bench::makeRecord(
          inst.name + "/k=" + std::to_string(parKs[i]) + "+par", t, s));
      if (std::isinf(t)) {
        std::printf("  %7s", "t/o");
      } else {
        const double speedup = tSeq / t;
        parSums[i] += speedup;
        std::printf("  %7.2f", speedup);
      }
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  bench::writeBenchJson("fig8_koperations", records);

  bench::printRule();
  std::printf("%-18s %10s", "average", "");
  for (std::size_t i = 0; i < ks.size(); ++i) {
    std::printf("  %7.2f", sums[i] / static_cast<double>(instances.size()));
  }
  for (std::size_t i = 0; i < pipedKs.size(); ++i) {
    std::printf("  %7.2f",
                pipedSums[i] / static_cast<double>(instances.size()));
  }
  for (std::size_t i = 0; i < parKs.size(); ++i) {
    std::printf("  %7.2f",
                parSums[i] / static_cast<double>(instances.size()));
  }
  std::printf("\n");
  return 0;
}
