/// \file bench_table2_shor.cpp
/// \brief Reproduces Table II of the paper: shor benchmarks under
///        (1) sequential simulation of the gate-level Beauregard circuit
///        (t_sota), (2) the best general combining strategy on the same
///        circuit (t_general), and (3) the *DD-construct* strategy, where
///        the modular-multiplication oracles become permutation-matrix DDs
///        directly and only n+1 qubits remain (t_DD-construct).
///
/// Expected shape: t_general < t_sota by factors; t_DD-construct is orders
/// of magnitude below both (the paper reports hours -> sub-second).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "algo/numbertheory.hpp"
#include "bench_common.hpp"

int main() {
  using namespace ddsim;

  struct Row {
    std::uint64_t N;
    std::uint64_t a;
  };
  // Semiprime ladder (paper: N up to ~14 bits under a 2 h timeout; we scale
  // to keep t_sota in seconds-to-minutes — see DESIGN.md substitutions).
  // Semiprime ladder with deliberately varied multiplicative orders — the
  // paper notes that "N and a significantly affect the simulation time".
  const std::vector<Row> rows = {
      {15, 7},    // 3 * 5,   11 qubits gate-level, order 4
      {55, 12},   // 5 * 11,  15 qubits, order 4
      {119, 15},  // 7 * 17,  17 qubits, order 8
      {253, 16},  // 11 * 23, 19 qubits, order 55
  };

  std::printf("Table II — results for shor benchmarks (strategy "
              "DD-construct)\n");
  bench::printRule(90);
  std::printf("%-18s %12s %12s %18s\n", "Benchmark", "t_sota[s]",
              "t_general[s]", "t_DD-construct[s]");
  bench::printRule(90);

  const double cap = 90.0;
  std::vector<bench::BenchRecord> records;
  for (const auto& row : rows) {
    const ir::Circuit gateLevel = algo::makeShorBeauregardCircuit(row.N, row.a);
    const ir::Circuit oracleLevel = algo::makeShorOracleCircuit(row.N, row.a);
    const std::string name = algo::shorBenchmarkName(row.N, row.a);

    sim::SimulationStats sotaStats;
    const double tSota = bench::timedRun(
        gateLevel, sim::StrategyConfig::sequential(), cap, &sotaStats);
    records.push_back(bench::makeRecord(name + "/sequential", tSota, sotaStats));

    double tGeneral = tSota;
    sim::SimulationStats generalStats = sotaStats;
    for (const std::size_t k : {8U, 32U}) {
      sim::SimulationStats s;
      const double t = bench::timedRun(
          gateLevel, sim::StrategyConfig::kOperations(k), cap, &s);
      if (t < tGeneral) {
        tGeneral = t;
        generalStats = s;
      }
    }
    for (const std::size_t sMax : {1024U, 4096U}) {
      sim::SimulationStats s;
      const double t = bench::timedRun(
          gateLevel, sim::StrategyConfig::maxSizeStrategy(sMax), cap, &s);
      if (t < tGeneral) {
        tGeneral = t;
        generalStats = s;
      }
    }
    records.push_back(bench::makeRecord(name + "/general", tGeneral, generalStats));

    sim::SimulationStats constructStats;
    const double tConstruct = bench::timedRun(
        oracleLevel, sim::StrategyConfig::sequential(), cap, &constructStats);
    records.push_back(
        bench::makeRecord(name + "/DD-construct", tConstruct, constructStats));

    std::printf("%-18s %12s %12s %18s\n", name.c_str(),
                bench::formatSeconds(tSota, cap).c_str(),
                bench::formatSeconds(tGeneral, cap).c_str(),
                bench::formatSeconds(tConstruct, cap).c_str());
    std::fflush(stdout);
  }
  bench::writeBenchJson("table2_shor", records);
  return 0;
}
