/// \file bench_table1_grover.cpp
/// \brief Reproduces Table I of the paper: grover benchmarks under
///        (1) the state-of-the-art sequential schedule (t_sota),
///        (2) the best general combining strategy (t_general), and
///        (3) the knowledge-based *DD-repeating* strategy that combines one
///        Grover iteration once and re-applies it (t_DD-repeating).
///
/// Expected shape: t_general < t_sota (factor ~2-5), and t_DD-repeating
/// improves on t_general by up to another factor of ~2 (paper Section V).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main() {
  using namespace ddsim;

  struct Row {
    std::size_t qubits;
    std::uint64_t marked;
  };
  // Grover ladder; the paper used 23..29 qubits with a 2h budget, we scale
  // down to keep every cell in seconds (see DESIGN.md substitutions).
  const std::vector<Row> rows = {
      {14, 11213}, {16, 48879}, {18, 123456}, {20, 876543}};

  std::printf("Table I — results for grover benchmarks (strategy "
              "DD-repeating)\n");
  bench::printRule();
  std::printf("%-14s %12s %12s %18s\n", "Benchmark", "t_sota[s]", "t_general[s]",
              "t_DD-repeating[s]");
  bench::printRule();

  const double cap = 45.0;
  std::vector<bench::BenchRecord> records;
  for (const auto& row : rows) {
    const ir::Circuit circuit = algo::makeGroverCircuit(row.qubits, row.marked);
    const std::string name = "Grover_" + std::to_string(row.qubits);

    sim::SimulationStats sotaStats;
    const double tSota = bench::timedRun(
        circuit, sim::StrategyConfig::sequential(), cap, &sotaStats);
    records.push_back(bench::makeRecord(name + "/sequential", tSota, sotaStats));

    // t_general: the best k / s_max over a small sweep, as in the paper
    // ("results obtained by the best choice of k/s_max").
    double tGeneral = tSota;
    sim::SimulationStats generalStats = sotaStats;
    for (const std::size_t k : {2U, 4U, 8U}) {
      sim::SimulationStats s;
      const double t =
          bench::timedRun(circuit, sim::StrategyConfig::kOperations(k), cap, &s);
      if (t < tGeneral) {
        tGeneral = t;
        generalStats = s;
      }
    }
    for (const std::size_t sMax : {64U, 256U}) {
      sim::SimulationStats s;
      const double t = bench::timedRun(
          circuit, sim::StrategyConfig::maxSizeStrategy(sMax), cap, &s);
      if (t < tGeneral) {
        tGeneral = t;
        generalStats = s;
      }
    }
    records.push_back(bench::makeRecord(name + "/general", tGeneral, generalStats));

    sim::StrategyConfig repeating = sim::StrategyConfig::sequential();
    repeating.reuseRepeatedBlocks = true;
    sim::SimulationStats repStats;
    const double tRepeating = bench::timedRun(circuit, repeating, cap, &repStats);
    records.push_back(
        bench::makeRecord(name + "/DD-repeating", tRepeating, repStats));

    std::printf("Grover_%-7zu %12s %12s %18s\n", row.qubits,
                bench::formatSeconds(tSota, cap).c_str(),
                bench::formatSeconds(tGeneral, cap).c_str(),
                bench::formatSeconds(tRepeating, cap).c_str());
    std::fflush(stdout);
  }
  bench::writeBenchJson("table1_grover", records);
  return 0;
}
