/// \file bench_fig9_maxsize.cpp
/// \brief Reproduces Fig. 9 of the paper: speed-up of the *max-size*
///        strategy over sequential DD simulation as a function of the node
///        budget s_max for the accumulated operation product.
///
/// Expected shape mirrors Fig. 8: tiny budgets reduce to sequential
/// behaviour, moderate budgets give the best speed-up, oversized budgets
/// let the product DD blow up and erase the gains.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main() {
  using namespace ddsim;

  const std::vector<std::size_t> sizes = {16, 64, 256, 1024, 4096};
  // Pipelined variants (PR 5): builder thread accumulates the next block
  // while the main thread applies the previous one.
  const std::vector<std::size_t> pipedSizes = {256, 1024};
  // Parallel-kernel variants: two kernel workers inside the main package.
  const std::vector<std::size_t> parSizes = {256, 1024};
  const auto instances = bench::figureBenchmarks();

  std::printf("Fig. 9 — speed-up of strategy max-size vs. sequential DD "
              "simulation\n");
  bench::printRule(100);
  std::printf("%-18s %10s", "benchmark", "t_seq[s]");
  for (const std::size_t s : sizes) {
    std::printf(" s=%-6zu", s);
  }
  for (const std::size_t s : pipedSizes) {
    std::printf(" s=%zu+p ", s);
  }
  for (const std::size_t s : parSizes) {
    std::printf(" s=%zu+t ", s);
  }
  std::printf("\n");
  bench::printRule(100);

  const double cap = 45.0;  // see bench_fig8_koperations

  std::vector<double> sums(sizes.size(), 0.0);
  std::vector<double> pipedSums(pipedSizes.size(), 0.0);
  std::vector<double> parSums(parSizes.size(), 0.0);
  std::vector<bench::BenchRecord> records;
  for (const auto& inst : instances) {
    const ir::Circuit circuit = inst.make();
    sim::SimulationStats seqStats;
    const double tSeq = bench::timedRun(
        circuit, sim::StrategyConfig::sequential(), cap, &seqStats);
    records.push_back(
        bench::makeRecord(inst.name + "/sequential", tSeq, seqStats));
    std::printf("%-18s %10s", inst.name.c_str(),
                bench::formatSeconds(tSeq, cap).c_str());
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      sim::SimulationStats s;
      const double t = bench::timedRun(
          circuit, sim::StrategyConfig::maxSizeStrategy(sizes[i]), cap, &s);
      records.push_back(bench::makeRecord(
          inst.name + "/s_max=" + std::to_string(sizes[i]), t, s));
      if (std::isinf(t)) {
        std::printf(" %7s", "t/o");
      } else {
        const double speedup = tSeq / t;
        sums[i] += speedup;
        std::printf(" %7.2f", speedup);
      }
    }
    for (std::size_t i = 0; i < pipedSizes.size(); ++i) {
      sim::StrategyConfig config =
          sim::StrategyConfig::maxSizeStrategy(pipedSizes[i]);
      config.pipeline = true;
      sim::SimulationStats s;
      const double t = bench::timedRun(circuit, config, cap, &s);
      records.push_back(bench::makeRecord(
          inst.name + "/s_max=" + std::to_string(pipedSizes[i]) + "+pipe", t,
          s));
      if (std::isinf(t)) {
        std::printf(" %7s", "t/o");
      } else {
        const double speedup = tSeq / t;
        pipedSums[i] += speedup;
        std::printf(" %7.2f", speedup);
      }
    }
    for (std::size_t i = 0; i < parSizes.size(); ++i) {
      sim::StrategyConfig config =
          sim::StrategyConfig::maxSizeStrategy(parSizes[i]);
      config.threads = 2;
      sim::SimulationStats s;
      const double t = bench::timedRun(circuit, config, cap, &s);
      records.push_back(bench::makeRecord(
          inst.name + "/s_max=" + std::to_string(parSizes[i]) + "+par", t,
          s));
      if (std::isinf(t)) {
        std::printf(" %7s", "t/o");
      } else {
        const double speedup = tSeq / t;
        parSums[i] += speedup;
        std::printf(" %7.2f", speedup);
      }
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  bench::writeBenchJson("fig9_maxsize", records);

  bench::printRule(100);
  std::printf("%-18s %10s", "average", "");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf(" %7.2f", sums[i] / static_cast<double>(instances.size()));
  }
  for (std::size_t i = 0; i < pipedSizes.size(); ++i) {
    std::printf(" %7.2f",
                pipedSums[i] / static_cast<double>(instances.size()));
  }
  for (std::size_t i = 0; i < parSizes.size(); ++i) {
    std::printf(" %7.2f",
                parSums[i] / static_cast<double>(instances.size()));
  }
  std::printf("\n");
  return 0;
}
