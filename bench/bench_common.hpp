/// \file bench_common.hpp
/// \brief Shared infrastructure for the table/figure reproduction benches:
///        the benchmark instance families of the paper's Section V and
///        formatted output helpers.

#pragma once

#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "algo/grover.hpp"
#include "algo/shor.hpp"
#include "algo/supremacy.hpp"
#include "sim/simulator.hpp"

namespace ddsim::bench {

struct Instance {
  std::string name;
  std::function<ir::Circuit()> make;
};

/// The benchmark families of the paper (grover_*, shor_*, supremacy_*),
/// scaled to sizes that run in seconds on a laptop-class machine (see
/// DESIGN.md, substitution table). Sizes chosen so that sequential DD
/// simulation is non-trivial but every sweep point finishes quickly.
inline std::vector<Instance> figureBenchmarks() {
  return {
      {"grover_16", [] { return algo::makeGroverCircuit(16, 48879); }},
      {"grover_18", [] { return algo::makeGroverCircuit(18, 123456); }},
      {"shor_119_15_17",
       [] { return algo::makeShorBeauregardCircuit(119, 15); }},
      {"shor_253_16_19",
       [] { return algo::makeShorBeauregardCircuit(253, 16); }},
      {"supremacy_16_16",
       [] { return algo::makeSupremacyCircuit({4, 4, 16, 7}); }},
      {"supremacy_8_20",
       [] { return algo::makeSupremacyCircuit({4, 5, 8, 11}); }},
  };
}

/// Simulate once and return wall seconds (plus optional full stats). A
/// positive \p timeLimitSeconds caps the run like the paper's 2h CPU budget;
/// a timed-out run reports +infinity (rendered as "t/o" by the benches).
inline double timedRun(const ir::Circuit& circuit, sim::StrategyConfig config,
                       double timeLimitSeconds = 0.0,
                       sim::SimulationStats* statsOut = nullptr) {
  config.timeLimitSeconds = timeLimitSeconds;
  try {
    const auto result = sim::simulate(circuit, config, /*seed=*/12345);
    if (statsOut != nullptr) {
      *statsOut = result.stats;
    }
    return result.stats.wallSeconds;
  } catch (const sim::SimulationTimeout&) {
    return std::numeric_limits<double>::infinity();
  }
}

/// Render a seconds cell, using the paper's ">limit" notation for timeouts.
inline std::string formatSeconds(double seconds, double limit) {
  char buffer[32];
  if (std::isinf(seconds)) {
    std::snprintf(buffer, sizeof buffer, ">%.0f", limit);
  } else {
    std::snprintf(buffer, sizeof buffer, "%.3f", seconds);
  }
  return buffer;
}

inline void printRule(int width = 78) {
  for (int i = 0; i < width; ++i) {
    std::fputc('-', stdout);
  }
  std::fputc('\n', stdout);
}

}  // namespace ddsim::bench
