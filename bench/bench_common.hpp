/// \file bench_common.hpp
/// \brief Shared infrastructure for the table/figure reproduction benches:
///        the benchmark instance families of the paper's Section V and
///        formatted output helpers.

#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "algo/grover.hpp"
#include "algo/shor.hpp"
#include "algo/supremacy.hpp"
#include "sim/simulator.hpp"

namespace ddsim::bench {

struct Instance {
  std::string name;
  std::function<ir::Circuit()> make;
};

/// The benchmark families of the paper (grover_*, shor_*, supremacy_*),
/// scaled to sizes that run in seconds on a laptop-class machine (see
/// DESIGN.md, substitution table). Sizes chosen so that sequential DD
/// simulation is non-trivial but every sweep point finishes quickly.
inline std::vector<Instance> figureBenchmarks() {
  return {
      {"grover_16", [] { return algo::makeGroverCircuit(16, 48879); }},
      {"grover_18", [] { return algo::makeGroverCircuit(18, 123456); }},
      {"shor_119_15_17",
       [] { return algo::makeShorBeauregardCircuit(119, 15); }},
      {"shor_253_16_19",
       [] { return algo::makeShorBeauregardCircuit(253, 16); }},
      {"supremacy_16_16",
       [] { return algo::makeSupremacyCircuit({4, 4, 16, 7}); }},
      {"supremacy_8_20",
       [] { return algo::makeSupremacyCircuit({4, 5, 8, 11}); }},
  };
}

/// Simulate once and return wall seconds (plus optional full stats). A
/// positive \p timeLimitSeconds caps the run like the paper's 2h CPU budget;
/// a timed-out or budget-exhausted run reports +infinity (rendered as "t/o"
/// by the benches), with the partial-progress stats preserved in statsOut.
inline double timedRun(const ir::Circuit& circuit, sim::StrategyConfig config,
                       double timeLimitSeconds = 0.0,
                       sim::SimulationStats* statsOut = nullptr) {
  config.timeLimitSeconds = timeLimitSeconds;
  try {
    const auto result = sim::simulate(circuit, config, /*seed=*/12345);
    if (statsOut != nullptr) {
      *statsOut = result.stats;
    }
    return result.stats.wallSeconds;
  } catch (const sim::SimulationTimeout& e) {
    if (statsOut != nullptr) {
      *statsOut = e.partial().stats;
    }
    return std::numeric_limits<double>::infinity();
  } catch (const sim::ResourceExhausted& e) {
    if (statsOut != nullptr) {
      *statsOut = e.partial().stats;
    }
    return std::numeric_limits<double>::infinity();
  }
}

/// Render a seconds cell, using the paper's ">limit" notation for timeouts.
inline std::string formatSeconds(double seconds, double limit) {
  char buffer[32];
  if (std::isinf(seconds)) {
    std::snprintf(buffer, sizeof buffer, ">%.0f", limit);
  } else {
    std::snprintf(buffer, sizeof buffer, "%.3f", seconds);
  }
  return buffer;
}

inline void printRule(int width = 78) {
  for (int i = 0; i < width; ++i) {
    std::fputc('-', stdout);
  }
  std::fputc('\n', stdout);
}

// ----------------------------------------------------- machine-readable output

/// One result row of a benchmark executable, serialized into BENCH_*.json so
/// that CI and regression tooling can diff runs without scraping the tables.
struct BenchRecord {
  std::string name;  ///< instance / configuration label, e.g. "grover_16/k=4"
  double wallMs = 0.0;
  std::size_t peakNodes = 0;  ///< peak live DD nodes during the run
  /// Memoization / structure-aware kernel rates (0 when unavailable).
  double mulCacheHitRate = 0.0;
  double identitySkipRate = 0.0;
  double gcRetentionRate = 0.0;
  std::uint64_t cacheRetained = 0;  ///< entries reused across a GC
  bool timedOut = false;
  /// Degradation-ladder engagements under a resource budget (0 without one).
  std::uint64_t degradationEvents = 0;
  /// True when the run ended early (timeout or resource exhaustion) and the
  /// stats come from a PartialResult snapshot rather than a completed run.
  bool partialResult = false;
};

/// Build a record from a timedRun() result. Handles the +infinity timeout
/// convention: a timed-out run is flagged and reports 0 ms.
inline BenchRecord makeRecord(std::string name, double seconds,
                              const sim::SimulationStats& stats) {
  BenchRecord r;
  r.name = std::move(name);
  r.timedOut = std::isinf(seconds);
  r.partialResult = r.timedOut;
  r.wallMs = r.timedOut ? 0.0 : seconds * 1e3;
  r.peakNodes = stats.peakStateNodes + stats.peakMatrixNodes;
  r.mulCacheHitRate = stats.cache.mulHitRate();
  r.identitySkipRate = stats.dd.identitySkipRate();
  r.gcRetentionRate = stats.cache.gcRetentionRate();
  r.cacheRetained = stats.cache.cacheRetained;
  r.degradationEvents = stats.degradationEvents;
  return r;
}

/// Write `BENCH_<benchName>.json` into the working directory. The format is
/// a flat object with a `results` array — stable keys, one row per record.
inline void writeBenchJson(const std::string& benchName,
                           const std::vector<BenchRecord>& records) {
  const std::string path = "BENCH_" + benchName + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": [\n",
               benchName.c_str());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"wall_ms\": %.3f, "
                 "\"peak_nodes\": %zu, \"mul_cache_hit_rate\": %.4f, "
                 "\"identity_skip_rate\": %.4f, \"gc_retention_rate\": %.4f, "
                 "\"cache_retained\": %llu, \"timed_out\": %s, "
                 "\"degradation_events\": %llu, \"partial_result\": %s}%s\n",
                 r.name.c_str(), r.wallMs, r.peakNodes, r.mulCacheHitRate,
                 r.identitySkipRate, r.gcRetentionRate,
                 static_cast<unsigned long long>(r.cacheRetained),
                 r.timedOut ? "true" : "false",
                 static_cast<unsigned long long>(r.degradationEvents),
                 r.partialResult ? "true" : "false",
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace ddsim::bench
