file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_grover.dir/bench_table1_grover.cpp.o"
  "CMakeFiles/bench_table1_grover.dir/bench_table1_grover.cpp.o.d"
  "bench_table1_grover"
  "bench_table1_grover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_grover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
