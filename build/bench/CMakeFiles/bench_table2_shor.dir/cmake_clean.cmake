file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_shor.dir/bench_table2_shor.cpp.o"
  "CMakeFiles/bench_table2_shor.dir/bench_table2_shor.cpp.o.d"
  "bench_table2_shor"
  "bench_table2_shor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_shor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
