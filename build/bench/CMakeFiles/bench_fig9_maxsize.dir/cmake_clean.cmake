file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_maxsize.dir/bench_fig9_maxsize.cpp.o"
  "CMakeFiles/bench_fig9_maxsize.dir/bench_fig9_maxsize.cpp.o.d"
  "bench_fig9_maxsize"
  "bench_fig9_maxsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_maxsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
