# Empty dependencies file for bench_fig9_maxsize.
# This may be replaced when dependencies are built.
