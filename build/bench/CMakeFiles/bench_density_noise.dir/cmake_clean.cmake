file(REMOVE_RECURSE
  "CMakeFiles/bench_density_noise.dir/bench_density_noise.cpp.o"
  "CMakeFiles/bench_density_noise.dir/bench_density_noise.cpp.o.d"
  "bench_density_noise"
  "bench_density_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_density_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
