file(REMOVE_RECURSE
  "CMakeFiles/bench_dd_ops.dir/bench_dd_ops.cpp.o"
  "CMakeFiles/bench_dd_ops.dir/bench_dd_ops.cpp.o.d"
  "bench_dd_ops"
  "bench_dd_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dd_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
