# Empty dependencies file for bench_dd_ops.
# This may be replaced when dependencies are built.
