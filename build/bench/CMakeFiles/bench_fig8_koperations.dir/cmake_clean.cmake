file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_koperations.dir/bench_fig8_koperations.cpp.o"
  "CMakeFiles/bench_fig8_koperations.dir/bench_fig8_koperations.cpp.o.d"
  "bench_fig8_koperations"
  "bench_fig8_koperations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_koperations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
