file(REMOVE_RECURSE
  "CMakeFiles/supremacy_sampling.dir/supremacy_sampling.cpp.o"
  "CMakeFiles/supremacy_sampling.dir/supremacy_sampling.cpp.o.d"
  "supremacy_sampling"
  "supremacy_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supremacy_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
