# Empty dependencies file for supremacy_sampling.
# This may be replaced when dependencies are built.
