file(REMOVE_RECURSE
  "CMakeFiles/equivalence_check.dir/equivalence_check.cpp.o"
  "CMakeFiles/equivalence_check.dir/equivalence_check.cpp.o.d"
  "equivalence_check"
  "equivalence_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equivalence_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
