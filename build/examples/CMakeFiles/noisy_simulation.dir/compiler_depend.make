# Empty compiler generated dependencies file for noisy_simulation.
# This may be replaced when dependencies are built.
