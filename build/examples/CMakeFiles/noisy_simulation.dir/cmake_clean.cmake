file(REMOVE_RECURSE
  "CMakeFiles/noisy_simulation.dir/noisy_simulation.cpp.o"
  "CMakeFiles/noisy_simulation.dir/noisy_simulation.cpp.o.d"
  "noisy_simulation"
  "noisy_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noisy_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
