file(REMOVE_RECURSE
  "CMakeFiles/ddsim_algo.dir/algo/arithmetic.cpp.o"
  "CMakeFiles/ddsim_algo.dir/algo/arithmetic.cpp.o.d"
  "CMakeFiles/ddsim_algo.dir/algo/benchmarks.cpp.o"
  "CMakeFiles/ddsim_algo.dir/algo/benchmarks.cpp.o.d"
  "CMakeFiles/ddsim_algo.dir/algo/grover.cpp.o"
  "CMakeFiles/ddsim_algo.dir/algo/grover.cpp.o.d"
  "CMakeFiles/ddsim_algo.dir/algo/numbertheory.cpp.o"
  "CMakeFiles/ddsim_algo.dir/algo/numbertheory.cpp.o.d"
  "CMakeFiles/ddsim_algo.dir/algo/qaoa.cpp.o"
  "CMakeFiles/ddsim_algo.dir/algo/qaoa.cpp.o.d"
  "CMakeFiles/ddsim_algo.dir/algo/qft.cpp.o"
  "CMakeFiles/ddsim_algo.dir/algo/qft.cpp.o.d"
  "CMakeFiles/ddsim_algo.dir/algo/shor.cpp.o"
  "CMakeFiles/ddsim_algo.dir/algo/shor.cpp.o.d"
  "CMakeFiles/ddsim_algo.dir/algo/supremacy.cpp.o"
  "CMakeFiles/ddsim_algo.dir/algo/supremacy.cpp.o.d"
  "CMakeFiles/ddsim_algo.dir/algo/textbook.cpp.o"
  "CMakeFiles/ddsim_algo.dir/algo/textbook.cpp.o.d"
  "libddsim_algo.a"
  "libddsim_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddsim_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
