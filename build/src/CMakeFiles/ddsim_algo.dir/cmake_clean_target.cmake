file(REMOVE_RECURSE
  "libddsim_algo.a"
)
