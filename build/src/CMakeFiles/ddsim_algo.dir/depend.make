# Empty dependencies file for ddsim_algo.
# This may be replaced when dependencies are built.
