
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/arithmetic.cpp" "src/CMakeFiles/ddsim_algo.dir/algo/arithmetic.cpp.o" "gcc" "src/CMakeFiles/ddsim_algo.dir/algo/arithmetic.cpp.o.d"
  "/root/repo/src/algo/benchmarks.cpp" "src/CMakeFiles/ddsim_algo.dir/algo/benchmarks.cpp.o" "gcc" "src/CMakeFiles/ddsim_algo.dir/algo/benchmarks.cpp.o.d"
  "/root/repo/src/algo/grover.cpp" "src/CMakeFiles/ddsim_algo.dir/algo/grover.cpp.o" "gcc" "src/CMakeFiles/ddsim_algo.dir/algo/grover.cpp.o.d"
  "/root/repo/src/algo/numbertheory.cpp" "src/CMakeFiles/ddsim_algo.dir/algo/numbertheory.cpp.o" "gcc" "src/CMakeFiles/ddsim_algo.dir/algo/numbertheory.cpp.o.d"
  "/root/repo/src/algo/qaoa.cpp" "src/CMakeFiles/ddsim_algo.dir/algo/qaoa.cpp.o" "gcc" "src/CMakeFiles/ddsim_algo.dir/algo/qaoa.cpp.o.d"
  "/root/repo/src/algo/qft.cpp" "src/CMakeFiles/ddsim_algo.dir/algo/qft.cpp.o" "gcc" "src/CMakeFiles/ddsim_algo.dir/algo/qft.cpp.o.d"
  "/root/repo/src/algo/shor.cpp" "src/CMakeFiles/ddsim_algo.dir/algo/shor.cpp.o" "gcc" "src/CMakeFiles/ddsim_algo.dir/algo/shor.cpp.o.d"
  "/root/repo/src/algo/supremacy.cpp" "src/CMakeFiles/ddsim_algo.dir/algo/supremacy.cpp.o" "gcc" "src/CMakeFiles/ddsim_algo.dir/algo/supremacy.cpp.o.d"
  "/root/repo/src/algo/textbook.cpp" "src/CMakeFiles/ddsim_algo.dir/algo/textbook.cpp.o" "gcc" "src/CMakeFiles/ddsim_algo.dir/algo/textbook.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ddsim_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ddsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ddsim_dd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
