
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/circuit.cpp" "src/CMakeFiles/ddsim_ir.dir/ir/circuit.cpp.o" "gcc" "src/CMakeFiles/ddsim_ir.dir/ir/circuit.cpp.o.d"
  "/root/repo/src/ir/gate.cpp" "src/CMakeFiles/ddsim_ir.dir/ir/gate.cpp.o" "gcc" "src/CMakeFiles/ddsim_ir.dir/ir/gate.cpp.o.d"
  "/root/repo/src/ir/operation.cpp" "src/CMakeFiles/ddsim_ir.dir/ir/operation.cpp.o" "gcc" "src/CMakeFiles/ddsim_ir.dir/ir/operation.cpp.o.d"
  "/root/repo/src/ir/optimize.cpp" "src/CMakeFiles/ddsim_ir.dir/ir/optimize.cpp.o" "gcc" "src/CMakeFiles/ddsim_ir.dir/ir/optimize.cpp.o.d"
  "/root/repo/src/ir/qasm.cpp" "src/CMakeFiles/ddsim_ir.dir/ir/qasm.cpp.o" "gcc" "src/CMakeFiles/ddsim_ir.dir/ir/qasm.cpp.o.d"
  "/root/repo/src/ir/transforms.cpp" "src/CMakeFiles/ddsim_ir.dir/ir/transforms.cpp.o" "gcc" "src/CMakeFiles/ddsim_ir.dir/ir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ddsim_dd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
