file(REMOVE_RECURSE
  "libddsim_ir.a"
)
