# Empty compiler generated dependencies file for ddsim_ir.
# This may be replaced when dependencies are built.
