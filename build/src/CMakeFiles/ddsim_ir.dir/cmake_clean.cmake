file(REMOVE_RECURSE
  "CMakeFiles/ddsim_ir.dir/ir/circuit.cpp.o"
  "CMakeFiles/ddsim_ir.dir/ir/circuit.cpp.o.d"
  "CMakeFiles/ddsim_ir.dir/ir/gate.cpp.o"
  "CMakeFiles/ddsim_ir.dir/ir/gate.cpp.o.d"
  "CMakeFiles/ddsim_ir.dir/ir/operation.cpp.o"
  "CMakeFiles/ddsim_ir.dir/ir/operation.cpp.o.d"
  "CMakeFiles/ddsim_ir.dir/ir/optimize.cpp.o"
  "CMakeFiles/ddsim_ir.dir/ir/optimize.cpp.o.d"
  "CMakeFiles/ddsim_ir.dir/ir/qasm.cpp.o"
  "CMakeFiles/ddsim_ir.dir/ir/qasm.cpp.o.d"
  "CMakeFiles/ddsim_ir.dir/ir/transforms.cpp.o"
  "CMakeFiles/ddsim_ir.dir/ir/transforms.cpp.o.d"
  "libddsim_ir.a"
  "libddsim_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddsim_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
