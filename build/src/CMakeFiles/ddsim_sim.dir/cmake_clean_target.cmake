file(REMOVE_RECURSE
  "libddsim_sim.a"
)
