# Empty compiler generated dependencies file for ddsim_sim.
# This may be replaced when dependencies are built.
