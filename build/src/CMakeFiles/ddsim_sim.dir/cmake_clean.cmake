file(REMOVE_RECURSE
  "CMakeFiles/ddsim_sim.dir/sim/build_dd.cpp.o"
  "CMakeFiles/ddsim_sim.dir/sim/build_dd.cpp.o.d"
  "CMakeFiles/ddsim_sim.dir/sim/density.cpp.o"
  "CMakeFiles/ddsim_sim.dir/sim/density.cpp.o.d"
  "CMakeFiles/ddsim_sim.dir/sim/equivalence.cpp.o"
  "CMakeFiles/ddsim_sim.dir/sim/equivalence.cpp.o.d"
  "CMakeFiles/ddsim_sim.dir/sim/noise.cpp.o"
  "CMakeFiles/ddsim_sim.dir/sim/noise.cpp.o.d"
  "CMakeFiles/ddsim_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/ddsim_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/ddsim_sim.dir/sim/stats.cpp.o"
  "CMakeFiles/ddsim_sim.dir/sim/stats.cpp.o.d"
  "CMakeFiles/ddsim_sim.dir/sim/stochastic.cpp.o"
  "CMakeFiles/ddsim_sim.dir/sim/stochastic.cpp.o.d"
  "libddsim_sim.a"
  "libddsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
