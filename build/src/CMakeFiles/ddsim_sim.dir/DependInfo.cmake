
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/build_dd.cpp" "src/CMakeFiles/ddsim_sim.dir/sim/build_dd.cpp.o" "gcc" "src/CMakeFiles/ddsim_sim.dir/sim/build_dd.cpp.o.d"
  "/root/repo/src/sim/density.cpp" "src/CMakeFiles/ddsim_sim.dir/sim/density.cpp.o" "gcc" "src/CMakeFiles/ddsim_sim.dir/sim/density.cpp.o.d"
  "/root/repo/src/sim/equivalence.cpp" "src/CMakeFiles/ddsim_sim.dir/sim/equivalence.cpp.o" "gcc" "src/CMakeFiles/ddsim_sim.dir/sim/equivalence.cpp.o.d"
  "/root/repo/src/sim/noise.cpp" "src/CMakeFiles/ddsim_sim.dir/sim/noise.cpp.o" "gcc" "src/CMakeFiles/ddsim_sim.dir/sim/noise.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/ddsim_sim.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/ddsim_sim.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/ddsim_sim.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/ddsim_sim.dir/sim/stats.cpp.o.d"
  "/root/repo/src/sim/stochastic.cpp" "src/CMakeFiles/ddsim_sim.dir/sim/stochastic.cpp.o" "gcc" "src/CMakeFiles/ddsim_sim.dir/sim/stochastic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ddsim_dd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ddsim_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
