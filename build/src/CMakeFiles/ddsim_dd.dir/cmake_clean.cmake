file(REMOVE_RECURSE
  "CMakeFiles/ddsim_dd.dir/dd/approximation.cpp.o"
  "CMakeFiles/ddsim_dd.dir/dd/approximation.cpp.o.d"
  "CMakeFiles/ddsim_dd.dir/dd/complex_table.cpp.o"
  "CMakeFiles/ddsim_dd.dir/dd/complex_table.cpp.o.d"
  "CMakeFiles/ddsim_dd.dir/dd/complex_value.cpp.o"
  "CMakeFiles/ddsim_dd.dir/dd/complex_value.cpp.o.d"
  "CMakeFiles/ddsim_dd.dir/dd/dot_export.cpp.o"
  "CMakeFiles/ddsim_dd.dir/dd/dot_export.cpp.o.d"
  "CMakeFiles/ddsim_dd.dir/dd/package.cpp.o"
  "CMakeFiles/ddsim_dd.dir/dd/package.cpp.o.d"
  "CMakeFiles/ddsim_dd.dir/dd/pauli.cpp.o"
  "CMakeFiles/ddsim_dd.dir/dd/pauli.cpp.o.d"
  "libddsim_dd.a"
  "libddsim_dd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddsim_dd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
