file(REMOVE_RECURSE
  "libddsim_dd.a"
)
