
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dd/approximation.cpp" "src/CMakeFiles/ddsim_dd.dir/dd/approximation.cpp.o" "gcc" "src/CMakeFiles/ddsim_dd.dir/dd/approximation.cpp.o.d"
  "/root/repo/src/dd/complex_table.cpp" "src/CMakeFiles/ddsim_dd.dir/dd/complex_table.cpp.o" "gcc" "src/CMakeFiles/ddsim_dd.dir/dd/complex_table.cpp.o.d"
  "/root/repo/src/dd/complex_value.cpp" "src/CMakeFiles/ddsim_dd.dir/dd/complex_value.cpp.o" "gcc" "src/CMakeFiles/ddsim_dd.dir/dd/complex_value.cpp.o.d"
  "/root/repo/src/dd/dot_export.cpp" "src/CMakeFiles/ddsim_dd.dir/dd/dot_export.cpp.o" "gcc" "src/CMakeFiles/ddsim_dd.dir/dd/dot_export.cpp.o.d"
  "/root/repo/src/dd/package.cpp" "src/CMakeFiles/ddsim_dd.dir/dd/package.cpp.o" "gcc" "src/CMakeFiles/ddsim_dd.dir/dd/package.cpp.o.d"
  "/root/repo/src/dd/pauli.cpp" "src/CMakeFiles/ddsim_dd.dir/dd/pauli.cpp.o" "gcc" "src/CMakeFiles/ddsim_dd.dir/dd/pauli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
