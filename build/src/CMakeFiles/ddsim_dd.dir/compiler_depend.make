# Empty compiler generated dependencies file for ddsim_dd.
# This may be replaced when dependencies are built.
