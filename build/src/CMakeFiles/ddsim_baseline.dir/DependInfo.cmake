
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/dense_matrix.cpp" "src/CMakeFiles/ddsim_baseline.dir/baseline/dense_matrix.cpp.o" "gcc" "src/CMakeFiles/ddsim_baseline.dir/baseline/dense_matrix.cpp.o.d"
  "/root/repo/src/baseline/statevector.cpp" "src/CMakeFiles/ddsim_baseline.dir/baseline/statevector.cpp.o" "gcc" "src/CMakeFiles/ddsim_baseline.dir/baseline/statevector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ddsim_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ddsim_dd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
