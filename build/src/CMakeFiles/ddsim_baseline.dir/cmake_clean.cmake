file(REMOVE_RECURSE
  "CMakeFiles/ddsim_baseline.dir/baseline/dense_matrix.cpp.o"
  "CMakeFiles/ddsim_baseline.dir/baseline/dense_matrix.cpp.o.d"
  "CMakeFiles/ddsim_baseline.dir/baseline/statevector.cpp.o"
  "CMakeFiles/ddsim_baseline.dir/baseline/statevector.cpp.o.d"
  "libddsim_baseline.a"
  "libddsim_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddsim_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
