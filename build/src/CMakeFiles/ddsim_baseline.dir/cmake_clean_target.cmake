file(REMOVE_RECURSE
  "libddsim_baseline.a"
)
