# Empty compiler generated dependencies file for ddsim_baseline.
# This may be replaced when dependencies are built.
