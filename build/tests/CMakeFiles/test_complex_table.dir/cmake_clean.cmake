file(REMOVE_RECURSE
  "CMakeFiles/test_complex_table.dir/test_complex_table.cpp.o"
  "CMakeFiles/test_complex_table.dir/test_complex_table.cpp.o.d"
  "test_complex_table"
  "test_complex_table.pdb"
  "test_complex_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_complex_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
