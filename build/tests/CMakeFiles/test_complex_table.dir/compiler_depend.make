# Empty compiler generated dependencies file for test_complex_table.
# This may be replaced when dependencies are built.
