file(REMOVE_RECURSE
  "CMakeFiles/test_approximation.dir/test_approximation.cpp.o"
  "CMakeFiles/test_approximation.dir/test_approximation.cpp.o.d"
  "test_approximation"
  "test_approximation.pdb"
  "test_approximation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_approximation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
