# Empty compiler generated dependencies file for test_approximation.
# This may be replaced when dependencies are built.
