# Empty dependencies file for test_numbertheory.
# This may be replaced when dependencies are built.
