file(REMOVE_RECURSE
  "CMakeFiles/test_numbertheory.dir/test_numbertheory.cpp.o"
  "CMakeFiles/test_numbertheory.dir/test_numbertheory.cpp.o.d"
  "test_numbertheory"
  "test_numbertheory.pdb"
  "test_numbertheory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numbertheory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
