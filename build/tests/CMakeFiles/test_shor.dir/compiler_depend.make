# Empty compiler generated dependencies file for test_shor.
# This may be replaced when dependencies are built.
