file(REMOVE_RECURSE
  "CMakeFiles/test_shor.dir/test_shor.cpp.o"
  "CMakeFiles/test_shor.dir/test_shor.cpp.o.d"
  "test_shor"
  "test_shor.pdb"
  "test_shor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
