file(REMOVE_RECURSE
  "CMakeFiles/test_qft.dir/test_qft.cpp.o"
  "CMakeFiles/test_qft.dir/test_qft.cpp.o.d"
  "test_qft"
  "test_qft.pdb"
  "test_qft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
