file(REMOVE_RECURSE
  "CMakeFiles/test_grover.dir/test_grover.cpp.o"
  "CMakeFiles/test_grover.dir/test_grover.cpp.o.d"
  "test_grover"
  "test_grover.pdb"
  "test_grover[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
