file(REMOVE_RECURSE
  "CMakeFiles/test_dd_ops.dir/test_dd_ops.cpp.o"
  "CMakeFiles/test_dd_ops.dir/test_dd_ops.cpp.o.d"
  "test_dd_ops"
  "test_dd_ops.pdb"
  "test_dd_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dd_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
