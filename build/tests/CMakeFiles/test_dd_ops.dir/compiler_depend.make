# Empty compiler generated dependencies file for test_dd_ops.
# This may be replaced when dependencies are built.
