file(REMOVE_RECURSE
  "CMakeFiles/test_dense_baseline.dir/test_dense_baseline.cpp.o"
  "CMakeFiles/test_dense_baseline.dir/test_dense_baseline.cpp.o.d"
  "test_dense_baseline"
  "test_dense_baseline.pdb"
  "test_dense_baseline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dense_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
