# Empty dependencies file for test_dense_baseline.
# This may be replaced when dependencies are built.
