# Empty dependencies file for test_textbook.
# This may be replaced when dependencies are built.
