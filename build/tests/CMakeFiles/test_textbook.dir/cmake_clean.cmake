file(REMOVE_RECURSE
  "CMakeFiles/test_textbook.dir/test_textbook.cpp.o"
  "CMakeFiles/test_textbook.dir/test_textbook.cpp.o.d"
  "test_textbook"
  "test_textbook.pdb"
  "test_textbook[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_textbook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
