file(REMOVE_RECURSE
  "CMakeFiles/test_arithmetic.dir/test_arithmetic.cpp.o"
  "CMakeFiles/test_arithmetic.dir/test_arithmetic.cpp.o.d"
  "test_arithmetic"
  "test_arithmetic.pdb"
  "test_arithmetic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arithmetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
