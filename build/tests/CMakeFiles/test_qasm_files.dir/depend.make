# Empty dependencies file for test_qasm_files.
# This may be replaced when dependencies are built.
