file(REMOVE_RECURSE
  "CMakeFiles/test_supremacy.dir/test_supremacy.cpp.o"
  "CMakeFiles/test_supremacy.dir/test_supremacy.cpp.o.d"
  "test_supremacy"
  "test_supremacy.pdb"
  "test_supremacy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_supremacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
