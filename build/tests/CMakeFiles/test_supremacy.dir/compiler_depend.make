# Empty compiler generated dependencies file for test_supremacy.
# This may be replaced when dependencies are built.
