# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_complex_table[1]_include.cmake")
include("/root/repo/build/tests/test_dd_package[1]_include.cmake")
include("/root/repo/build/tests/test_dd_ops[1]_include.cmake")
include("/root/repo/build/tests/test_measure[1]_include.cmake")
include("/root/repo/build/tests/test_dense_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_qasm[1]_include.cmake")
include("/root/repo/build/tests/test_qasm_files[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_qft[1]_include.cmake")
include("/root/repo/build/tests/test_arithmetic[1]_include.cmake")
include("/root/repo/build/tests/test_grover[1]_include.cmake")
include("/root/repo/build/tests/test_shor[1]_include.cmake")
include("/root/repo/build/tests/test_supremacy[1]_include.cmake")
include("/root/repo/build/tests/test_numbertheory[1]_include.cmake")
include("/root/repo/build/tests/test_dot_export[1]_include.cmake")
include("/root/repo/build/tests/test_equivalence[1]_include.cmake")
include("/root/repo/build/tests/test_benchmarks[1]_include.cmake")
include("/root/repo/build/tests/test_property_sweeps[1]_include.cmake")
include("/root/repo/build/tests/test_transforms[1]_include.cmake")
include("/root/repo/build/tests/test_memory_manager[1]_include.cmake")
include("/root/repo/build/tests/test_textbook[1]_include.cmake")
include("/root/repo/build/tests/test_approximation[1]_include.cmake")
include("/root/repo/build/tests/test_density[1]_include.cmake")
include("/root/repo/build/tests/test_stochastic[1]_include.cmake")
include("/root/repo/build/tests/test_cross_engine[1]_include.cmake")
include("/root/repo/build/tests/test_optimize[1]_include.cmake")
include("/root/repo/build/tests/test_qaoa[1]_include.cmake")
